"""Typed metric instruments and the registry that owns them.

Three instrument kinds, deliberately Prometheus-shaped:

* :class:`Counter` -- a monotone total.  ``set()`` exists for
  *derived* counters republished from a cumulative source (the
  repository's cache ledger, the engine's work totals): the source is
  monotone, the instrument mirrors it absolutely at collect time.
* :class:`Gauge` -- a point-in-time level (resident cache entries,
  stored state tuples, batcher backlog).
* :class:`Histogram` -- cumulative fixed-bucket counts plus sum/count,
  rendered in the standard ``_bucket{le=...}`` exposition.

Every instrument is label-aware: each ``(name, labels)`` pair is one
sample, so a single ``repro_plan_repository_hits_total`` instrument
carries one sample per cache layer, and the sharded front door merges
per-worker registries by stamping a ``shard`` label on every sample
(:meth:`MetricsRegistry.merged`).

Hot paths never format label strings or touch the registry: components
register a *collector* callback (:meth:`MetricsRegistry.add_collector`)
that republishes their existing cheap counters into instruments only
when a snapshot or export is requested.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Iterable, Sequence

#: Default histogram buckets, in virtual seconds.  The serving tier's
#: latencies live in the 0.1s..300s range under the quick profiles.
DEFAULT_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
                   30.0, 60.0, 120.0, 300.0)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_str(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


class Instrument:
    """Common surface: a named family of labelled samples."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._samples: dict[LabelKey, float] = {}

    # -- writing ------------------------------------------------------------

    def set(self, value: float, **labels: str) -> None:
        self._samples[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount

    # -- reading ------------------------------------------------------------

    def value(self, **labels: str) -> float:
        return self._samples.get(_label_key(labels), 0.0)

    def samples(self) -> dict[LabelKey, float]:
        return dict(self._samples)

    def expose(self) -> list[tuple[str, LabelKey, float]]:
        """(suffix, labels, value) triples for the text exposition."""
        return [("", key, value)
                for key, value in sorted(self._samples.items())]


class Counter(Instrument):
    """A monotone total.  ``inc`` for live counting, ``set`` for
    mirroring an already-cumulative source at collect time."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name} cannot decrease (inc {amount})")
        super().inc(amount, **labels)


class Gauge(Instrument):
    """A point-in-time level; goes up and down freely."""

    kind = "gauge"


class Histogram(Instrument):
    """Fixed-bucket cumulative histogram with sum and count per label
    set.  ``observe`` records one sample; ``set_samples`` replaces a
    label set's distribution wholesale (used by derived publishers that
    keep the raw sample list elsewhere)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] | None = None) -> None:
        super().__init__(name, help)
        self.buckets = tuple(sorted(buckets or DEFAULT_BUCKETS))
        #: label key -> (per-bucket counts (+inf last), sum, count)
        self._dists: dict[LabelKey, tuple[list[int], float, int]] = {}

    def _dist(self, key: LabelKey) -> tuple[list[int], float, int]:
        if key not in self._dists:
            self._dists[key] = ([0] * (len(self.buckets) + 1), 0.0, 0)
        return self._dists[key]

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        counts, total, n = self._dist(key)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
        self._dists[key] = (counts, total + value, n + 1)

    def set_samples(self, values: Iterable[float], **labels: str) -> None:
        key = _label_key(labels)
        self._dists.pop(key, None)
        counts, total, n = self._dist(key)
        for value in values:
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
            total += value
            n += 1
        self._dists[key] = (counts, total, n)

    def merge_dist(self, key: LabelKey,
                   dist: tuple[list[int], float, int]) -> None:
        counts, total, n = self._dist(key)
        other_counts, other_total, other_n = dist
        for i, c in enumerate(other_counts[:len(counts)]):
            counts[i] += c
        self._dists[key] = (counts, total + other_total, n + other_n)

    def dists(self) -> dict[LabelKey, tuple[list[int], float, int]]:
        return {key: (list(counts), total, n)
                for key, (counts, total, n) in self._dists.items()}

    def count(self, **labels: str) -> int:
        return self._dist(_label_key(labels))[2]

    def sum(self, **labels: str) -> float:
        return self._dist(_label_key(labels))[1]

    def expose(self) -> list[tuple[str, LabelKey, float]]:
        rows: list[tuple[str, LabelKey, float]] = []
        for key, (counts, total, n) in sorted(self._dists.items()):
            cumulative = 0
            for bound, c in zip(self.buckets, counts):
                cumulative += c
                rows.append(("_bucket", key + (("le", f"{bound:g}"),),
                             float(cumulative)))
            rows.append(("_bucket", key + (("le", "+Inf"),), float(n)))
            rows.append(("_sum", key, total))
            rows.append(("_count", key, float(n)))
        return rows


class MetricsRegistry:
    """One namespace of instruments plus the collector callbacks that
    refresh derived instruments before any snapshot or export."""

    def __init__(self) -> None:
        self._instruments: dict[str, Instrument] = {}
        self._collectors: list[Callable[[], None]] = []

    # -- registration --------------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str,
                       **kwargs) -> Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"instrument {name!r} already registered as "
                    f"{existing.kind}, requested {cls.kind}")
            return existing
        instrument = cls(name, help, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] | None = None) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def add_collector(self, fn: Callable[[], None]) -> None:
        """Register a callback that republishes a component's counters
        into instruments; runs on every :meth:`collect`."""
        self._collectors.append(fn)

    # -- reading -------------------------------------------------------------

    def collect(self) -> None:
        for fn in self._collectors:
            fn()

    def instruments(self) -> list[Instrument]:
        return [self._instruments[name]
                for name in sorted(self._instruments)]

    def get(self, name: str) -> Instrument | None:
        return self._instruments.get(name)

    def snapshot(self) -> dict[str, dict]:
        """JSON-shaped view: name -> {type, help, samples: [...]}, with
        derived instruments refreshed first."""
        self.collect()
        out: dict[str, dict] = {}
        for inst in self.instruments():
            out[inst.name] = {
                "type": inst.kind,
                "help": inst.help,
                "samples": [
                    {"suffix": suffix, "labels": dict(key), "value": value}
                    for suffix, key, value in inst.expose()
                ],
            }
        return out

    def render_prometheus(self) -> str:
        """The standard text exposition format."""
        self.collect()
        lines: list[str] = []
        for inst in self.instruments():
            if inst.help:
                lines.append(f"# HELP {inst.name} {inst.help}")
            lines.append(f"# TYPE {inst.name} {inst.kind}")
            for suffix, key, value in inst.expose():
                rendered = f"{value:g}"
                lines.append(
                    f"{inst.name}{suffix}{_label_str(key)} {rendered}")
        return "\n".join(lines) + "\n"

    def jsonl_lines(self) -> list[str]:
        """One JSON object per instrument (the JSONL metric export)."""
        snap = self.snapshot()
        return [json.dumps({"name": name, **body}, sort_keys=True)
                for name, body in snap.items()]

    # -- wire state ----------------------------------------------------------

    def state(self) -> dict:
        """The whole namespace as plain JSON-able data -- the form a
        process worker ships its registry across the wire in.  Unlike
        :meth:`snapshot` (the human/export view), this preserves raw
        histogram distributions so :meth:`from_state` rebuilds a
        registry :meth:`merged` treats exactly like a live one."""
        self.collect()
        out: dict[str, dict] = {}
        for inst in self.instruments():
            entry: dict = {"kind": inst.kind, "help": inst.help}
            if isinstance(inst, Histogram):
                entry["buckets"] = list(inst.buckets)
                entry["dists"] = [
                    [[list(pair) for pair in key], list(counts), total, n]
                    for key, (counts, total, n) in sorted(
                        inst.dists().items())]
            else:
                entry["samples"] = [
                    [[list(pair) for pair in key], value]
                    for key, value in sorted(inst.samples().items())]
            out[inst.name] = entry
        return out

    @classmethod
    def from_state(cls, state: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`state` output (tuples may
        have become lists on the JSON wire)."""
        out = cls()
        for name, entry in state.items():
            kind = entry.get("kind")
            if kind == "histogram":
                inst = out.histogram(name, entry.get("help", ""),
                                     buckets=entry.get("buckets"))
                for key, counts, total, n in entry.get("dists", ()):
                    label_key = tuple((str(k), str(v)) for k, v in key)
                    inst.merge_dist(label_key, (list(counts), total, n))
                continue
            if kind == "counter":
                inst = out.counter(name, entry.get("help", ""))
            elif kind == "gauge":
                inst = out.gauge(name, entry.get("help", ""))
            else:
                raise ValueError(
                    f"unknown instrument kind {kind!r} for {name!r}")
            for key, value in entry.get("samples", ()):
                inst.set(value, **{str(k): str(v) for k, v in key})
        return out

    # -- merging -------------------------------------------------------------

    @classmethod
    def merged(cls, parts: Iterable[
            tuple["MetricsRegistry", dict[str, str]]]) -> "MetricsRegistry":
        """Fold several registries into a fresh one, stamping each
        part's samples with its extra labels (the sharded service
        passes ``{"shard": str(i)}`` per worker and ``{}`` for the
        front door).  Counter/gauge samples with identical final labels
        add; histogram distributions merge bucket-wise."""
        out = cls()
        for registry, extra in parts:
            registry.collect()
            for inst in registry.instruments():
                if isinstance(inst, Histogram):
                    target = out.histogram(inst.name, inst.help,
                                           buckets=inst.buckets)
                    for key, dist in inst.dists().items():
                        merged_key = _label_key(dict(key) | extra)
                        target.merge_dist(merged_key, dist)
                    continue
                target = (out.counter if isinstance(inst, Counter)
                          else out.gauge)(inst.name, inst.help)
                for key, value in inst.samples().items():
                    target.inc(value, **(dict(key) | extra))
        return out
