"""Exporters: metrics to Prometheus text / JSONL, traces to JSONL.

Also home of :func:`validate_trace_lines`, the schema check behind
``scripts/check_trace.py`` and the CI smoke job: it verifies the JSONL
trace dump structurally (required keys and types, parents before
children, one root per query, nesting, exactly one terminal span per
finished query) without needing anything outside the stdlib.
"""

from __future__ import annotations

import json
import pathlib
from collections.abc import Iterable

from repro.obs.instruments import MetricsRegistry
from repro.obs.trace import ROOT, TERMINAL, Tracer

#: Required keys of one trace JSONL line and their accepted types.
TRACE_SCHEMA: dict[str, tuple] = {
    "query": (str,),
    "span": (int,),
    "parent": (int, type(None)),
    "name": (str,),
    "virtual_start": (int, float),
    "virtual_end": (int, float, type(None)),
    "wall_start": (int, float),
    "wall_end": (int, float, type(None)),
    "attrs": (dict,),
}


def write_metrics(registry: MetricsRegistry, path: str | pathlib.Path) -> str:
    """Write one registry snapshot; the extension picks the format
    (``.prom``/``.txt`` -> Prometheus text exposition, anything else ->
    JSONL, one instrument per line).  Returns the format written."""
    path = pathlib.Path(path)
    if path.suffix in (".prom", ".txt"):
        path.write_text(registry.render_prometheus())
        return "prometheus"
    path.write_text("\n".join(registry.jsonl_lines()) + "\n")
    return "jsonl"


def write_trace(tracer: Tracer, directory: str | pathlib.Path,
                name: str = "trace.jsonl") -> pathlib.Path:
    """Dump every recorded trace as JSONL under ``directory``."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / name
    with path.open("w") as fh:
        tracer.dump_jsonl(fh)
    return path


def validate_trace_lines(lines: Iterable[str]) -> list[str]:
    """Check a JSONL trace dump against the schema; returns the list
    of violations (empty means valid)."""
    errors: list[str] = []
    #: (query, root-ordinal) -> span id -> (start, end, name); roots are
    #: numbered so archived re-submissions of one query id stay separate
    #: trees.
    trees: dict[tuple[str, int], dict[int, tuple]] = {}
    roots_seen: dict[str, int] = {}
    current_tree: dict[str, tuple[str, int]] = {}
    terminals: dict[tuple[str, int], int] = {}
    root_spans: dict[tuple[str, int], tuple] = {}

    for i, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            row = json.loads(raw)
        except json.JSONDecodeError as exc:
            errors.append(f"line {i}: not valid JSON ({exc})")
            continue
        missing = [k for k in TRACE_SCHEMA if k not in row]
        if missing:
            errors.append(f"line {i}: missing keys {missing}")
            continue
        bad = [k for k, types in TRACE_SCHEMA.items()
               if not isinstance(row[k], types)]
        if bad:
            errors.append(f"line {i}: wrong types for {bad}")
            continue
        qid = row["query"]
        v0, v1 = row["virtual_start"], row["virtual_end"]
        if v1 is not None and v1 < v0:
            errors.append(f"line {i}: span {row['name']!r} of {qid} ends "
                          f"before it starts ({v1} < {v0})")
        if row["parent"] is None:
            if row["name"] != ROOT:
                errors.append(f"line {i}: root span of {qid} is named "
                              f"{row['name']!r}, expected {ROOT!r}")
            if row["span"] != 0:
                errors.append(f"line {i}: root span of {qid} has id "
                              f"{row['span']}, expected 0")
            ordinal = roots_seen.get(qid, 0)
            roots_seen[qid] = ordinal + 1
            key = (qid, ordinal)
            current_tree[qid] = key
            trees[key] = {0: (v0, v1, row["name"])}
            root_spans[key] = (v0, v1, row.get("attrs", {}))
            continue
        key = current_tree.get(qid)
        if key is None:
            errors.append(f"line {i}: span of {qid} appeared before "
                          f"its root")
            continue
        tree = trees[key]
        if row["span"] in tree:
            errors.append(f"line {i}: duplicate span id {row['span']} "
                          f"for {qid}")
            continue
        parent = tree.get(row["parent"])
        if parent is None:
            errors.append(f"line {i}: span {row['span']} of {qid} "
                          f"references unseen parent {row['parent']}")
            continue
        p0, p1, _pname = parent
        if v0 < p0 - 1e-9 or (p1 is not None and v1 is not None
                              and v1 > p1 + 1e-9):
            errors.append(f"line {i}: span {row['name']!r} of {qid} "
                          f"[{v0}, {v1}] escapes its parent [{p0}, {p1}]")
        tree[row["span"]] = (v0, v1, row["name"])
        if row["name"] == TERMINAL:
            terminals[key] = terminals.get(key, 0) + 1

    for key, (_v0, v1, attrs) in root_spans.items():
        qid = key[0]
        if v1 is None:
            continue   # an unfinished (still-open) trace is legal
        n = terminals.get(key, 0)
        if n != 1:
            errors.append(f"query {qid}: {n} terminal spans, expected "
                          f"exactly 1")
        if "disposition" not in attrs:
            errors.append(f"query {qid}: finished root has no "
                          f"disposition attribute")
    return errors
