"""Per-query trace spans: why one answer took the time it took.

A :class:`Tracer` records, for every submitted query, a tree of
:class:`Span` objects timestamped on *both* clocks -- the virtual clock
the simulation runs on (:mod:`repro.common.clock`) and wall time
(:func:`repro.common.clock.wall_timer`), so a trace shows where the
simulated latency
went *and* where the process actually spent CPU.

The span tree for a served query reads like the pipeline::

    query                       (root: arrival -> terminal)
      cache_lookup              hit / miss
      admission                 accept / reject / defer
      batch_window              arrival -> batch dispatch
      optimize                  dispatch -> graft done
        template_lookup         repository layer ledger deltas
        plan_repository         hit / miss
        candidate_enumeration
        factorization           delta grafts
      execution                 one span per engine drive slice
      first_emission            the TTFA instant
      harvest                   answers delivered
      terminal                  done / cancelled / expired / rejected

Guarantees (property-tested in ``tests/test_obs_properties.py``):
spans are well nested (every child's interval lies inside its
parent's), every finished query carries exactly one ``terminal`` child,
and virtual time is monotone along every root-to-leaf path, with
sibling ``execution`` slices ordered and non-overlapping.

Tracing is opt-in and zero-overhead when off: every instrumentation
site is guarded by ``tracer.enabled``, and the default
:data:`NO_TRACER` is a :class:`NullTracer` whose methods are no-ops.
Tracing never perturbs execution -- it only reads clocks that already
advanced, so answers (and their digests) are byte-identical with
tracing on or off.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TextIO

from repro.common.clock import wall_timer

#: Span name of every trace's root.
ROOT = "query"
#: Span name of the single terminal-disposition marker.
TERMINAL = "terminal"


@dataclass
class Span:
    """One named interval (or instant, when ``v_end == v_start``)."""

    name: str
    v_start: float
    v_end: float | None = None
    w_start: float = 0.0
    w_end: float | None = None
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def v_duration(self) -> float | None:
        if self.v_end is None:
            return None
        return max(self.v_end - self.v_start, 0.0)

    @property
    def w_duration(self) -> float | None:
        if self.w_end is None:
            return None
        return max(self.w_end - self.w_start, 0.0)


class QueryTrace:
    """The span tree of one query, rooted at its ``query`` span."""

    def __init__(self, qid: str, root: Span) -> None:
        self.qid = qid
        self.root = root
        self.finished = False

    def spans(self) -> list[Span]:
        """Every span, preorder (root first)."""
        out: list[Span] = []
        stack = [self.root]
        while stack:
            span = stack.pop()
            out.append(span)
            stack.extend(reversed(span.children))
        return out

    def find(self, name: str) -> Span | None:
        for span in self.spans():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list[Span]:
        return [span for span in self.spans() if span.name == name]

    @property
    def disposition(self) -> str | None:
        return self.root.attrs.get("disposition")

    def render(self) -> str:
        """The ``repro explain`` tree: one line per span with virtual
        interval, virtual duration, wall duration, and attributes."""
        lines: list[str] = []

        def fmt(span: Span, depth: int) -> None:
            v1 = span.v_end if span.v_end is not None else span.v_start
            dv = span.v_duration
            dw = span.w_duration
            timing = f"v[{span.v_start:9.3f} ->{v1:9.3f}]"
            timing += f"  {dv:8.3f}s virtual" if dv is not None \
                else "  " + " " * 16
            timing += f"  {dw * 1e3:8.3f}ms wall" if dw is not None else ""
            attrs = " ".join(
                f"{k}={span.attrs[k]}" for k in sorted(span.attrs))
            pad = "  " * depth
            lines.append(f"{pad}{span.name:<{max(26 - 2 * depth, 1)}} "
                         f"{timing}" + (f"  {attrs}" if attrs else ""))
            for child in span.children:
                fmt(child, depth + 1)

        fmt(self.root, 0)
        return "\n".join(lines)


class Tracer:
    """Records one :class:`QueryTrace` per query, keyed by the client's
    ``kq_id``, with an alias table from engine ``uq_id`` to the query
    currently *owning* that execution (re-pointed on coalesced-leader
    promotion)."""

    enabled = True

    def __init__(self, wall=wall_timer) -> None:
        self.wall = wall
        self._traces: dict[str, QueryTrace] = {}
        self._archive: list[QueryTrace] = []
        self._aliases: dict[str, str] = {}   # uq_id -> owning qid

    # -- lifecycle ----------------------------------------------------------

    def start_query(self, qid: str, at: float, **attrs) -> QueryTrace:
        """Open (or join) the trace for ``qid`` at virtual instant
        ``at``.  An unfinished trace under the same id is *joined*, not
        replaced -- the sharded front door starts the trace and the
        owning worker adds to it; a finished one (a genuine re-submit
        of the same id) is archived and a fresh trace opened."""
        existing = self._traces.get(qid)
        if existing is not None:
            if not existing.finished:
                existing.root.attrs.update(attrs)
                return existing
            self._archive.append(existing)
        root = Span(ROOT, v_start=at, w_start=self.wall(), attrs=dict(attrs))
        trace = QueryTrace(qid, root)
        self._traces[qid] = trace
        return trace

    def finish_query(self, qid: str, at: float, disposition: str,
                     **attrs) -> None:
        """Close ``qid``'s root span: record the terminal instant as a
        ``terminal`` child, stamp the disposition, and clamp the root's
        end so every recorded child stays nested inside it (a cancel
        can be stamped behind a plan-graph clock that already ran
        ahead)."""
        trace = self._traces.get(qid)
        if trace is None:
            return
        # A query cannot end before it arrived: a coalesced follower is
        # released at its *leader's* completion instant, which can
        # precede the follower's own arrival on the virtual clock.
        at = max(at, trace.root.v_start)
        now = self.wall()
        trace.root.children.append(Span(
            TERMINAL, v_start=at, v_end=at, w_start=now, w_end=now,
            attrs={"disposition": disposition, **attrs}))
        end = at
        for child in trace.root.children:
            end = max(end, child.v_start,
                      child.v_end if child.v_end is not None else end)
        trace.root.v_end = max(end, trace.root.v_start)
        trace.root.w_end = now
        trace.root.attrs["disposition"] = disposition
        trace.finished = True

    # -- recording ----------------------------------------------------------

    def event(self, qid: str, name: str, at: float, **attrs) -> Span | None:
        """An instant child of ``qid``'s root (clamped into the root's
        open interval)."""
        return self.span(qid, name, at, at, **attrs)

    def span(self, qid: str, name: str, v_start: float, v_end: float,
             wall: tuple[float, float] | None = None, **attrs) -> Span | None:
        """A closed child of ``qid``'s root."""
        trace = self._traces.get(qid)
        if trace is None:
            return None
        v_start = max(v_start, trace.root.v_start)
        v_end = max(v_end, v_start)
        w0, w1 = wall if wall is not None else (self.wall(),) * 2
        span = Span(name, v_start=v_start, v_end=v_end,
                    w_start=w0, w_end=w1, attrs=dict(attrs))
        trace.root.children.append(span)
        return span

    def child(self, parent: Span | None, name: str, v_start: float,
              v_end: float | None = None, **attrs) -> Span | None:
        """A closed child of an existing span, clamped inside it."""
        if parent is None:
            return None
        v_start = max(v_start, parent.v_start)
        if parent.v_end is not None:
            v_start = min(v_start, parent.v_end)
        v_end = v_start if v_end is None else max(v_end, v_start)
        if parent.v_end is not None:
            v_end = min(v_end, parent.v_end)
        now = self.wall()
        span = Span(name, v_start=v_start, v_end=v_end,
                    w_start=now, w_end=now, attrs=dict(attrs))
        parent.children.append(span)
        return span

    # -- engine-side attribution -------------------------------------------

    def alias(self, uq_id: str, qid: str) -> None:
        """Point engine execution ``uq_id`` at the query that owns it
        (re-pointed when a coalesced follower is promoted to leader)."""
        self._aliases[uq_id] = qid

    def qid_for(self, uq_id: str) -> str | None:
        return self._aliases.get(uq_id)

    def event_uq(self, uq_id: str, name: str, at: float,
                 **attrs) -> Span | None:
        qid = self._aliases.get(uq_id)
        if qid is None:
            return None
        return self.event(qid, name, at, **attrs)

    def span_uq(self, uq_id: str, name: str, v_start: float, v_end: float,
                wall: tuple[float, float] | None = None,
                **attrs) -> Span | None:
        qid = self._aliases.get(uq_id)
        if qid is None:
            return None
        return self.span(qid, name, v_start, v_end, wall=wall, **attrs)

    def adopt(self, trace: QueryTrace) -> None:
        """Merge one externally recorded trace into this tracer.

        The process-worker transport records each routed query's worker
        spans in the worker's *own* tracer; at fleet close they are
        shipped back and adopted here.  When this tracer already holds
        an (unfinished) trace for the same query -- the front door
        opened it at submit -- the adopted root's children are grafted
        under the local root and its terminal disposition fills in the
        local one; an unknown query is archived whole.
        """
        mine = self._traces.get(trace.qid)
        if mine is None:
            self._archive.append(trace)
            return
        root, other = mine.root, trace.root
        root.children.extend(other.children)
        for key, value in other.attrs.items():
            root.attrs.setdefault(key, value)
        if root.v_end is None and other.v_end is not None:
            root.v_end = other.v_end
            root.w_end = other.w_end
        mine.finished = mine.finished or trace.finished

    # -- reading ------------------------------------------------------------

    def trace(self, qid: str) -> QueryTrace | None:
        return self._traces.get(qid)

    def traces(self) -> list[QueryTrace]:
        """Every trace recorded, archived re-submissions included."""
        return self._archive + list(self._traces.values())

    # -- export -------------------------------------------------------------

    def jsonl_lines(self) -> list[str]:
        """One JSON object per span (see ``scripts/check_trace.py`` for
        the schema): parents precede children, span ids are unique per
        query, the root has ``parent: null`` and name ``query``."""
        lines: list[str] = []
        for trace in self.traces():
            counter = [0]

            def walk(span: Span, parent_id: int | None) -> None:
                span_id = counter[0]
                counter[0] += 1
                lines.append(json.dumps({
                    "query": trace.qid,
                    "span": span_id,
                    "parent": parent_id,
                    "name": span.name,
                    "virtual_start": span.v_start,
                    "virtual_end": span.v_end,
                    "wall_start": span.w_start,
                    "wall_end": span.w_end,
                    "attrs": span.attrs,
                }, sort_keys=True, default=str))
                for kid in span.children:
                    walk(kid, span_id)

            walk(trace.root, None)
        return lines

    def dump_jsonl(self, fh: TextIO) -> int:
        """Write every span as JSONL; returns the line count."""
        lines = self.jsonl_lines()
        for line in lines:
            fh.write(line + "\n")
        return len(lines)


class NullTracer:
    """The zero-overhead default: every hook is a no-op behind a single
    ``enabled`` check that instrumentation sites guard on."""

    enabled = False

    def wall(self) -> float:
        return 0.0

    def start_query(self, qid, at, **attrs):
        return None

    def finish_query(self, qid, at, disposition, **attrs):
        return None

    def event(self, qid, name, at, **attrs):
        return None

    def span(self, qid, name, v_start, v_end, wall=None, **attrs):
        return None

    def child(self, parent, name, v_start, v_end=None, **attrs):
        return None

    def alias(self, uq_id, qid):
        return None

    def adopt(self, trace):
        return None

    def qid_for(self, uq_id):
        return None

    def event_uq(self, uq_id, name, at, **attrs):
        return None

    def span_uq(self, uq_id, name, v_start, v_end, wall=None, **attrs):
        return None

    def trace(self, qid):
        return None

    def traces(self):
        return []

    def jsonl_lines(self):
        return []

    def dump_jsonl(self, fh):
        return 0


#: Shared no-op tracer; the default everywhere a tracer is accepted.
NO_TRACER = NullTracer()
