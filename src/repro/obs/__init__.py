"""Observability: per-query traces, a typed metrics registry, exporters.

This package is the single substrate every serving-layer number flows
through: the :class:`~repro.obs.trace.Tracer` records one span tree per
query (admission, cache lookup, coalescing, batch window, plan
repository, execution slices, first emission, harvest, terminal
disposition -- on both the virtual and wall clocks), and the
:class:`~repro.obs.instruments.MetricsRegistry` owns the typed
Counter/Gauge/Histogram instruments that the answer cache, admission
controller, batcher, state manager, plan repository, and rank-merge
publish.  ``Telemetry``'s rendered operator summary is *derived from*
registry-backed instruments; exporters emit Prometheus text or JSONL.

Stable metric-name contract
===========================

Instrument names follow ``repro_<component>_<quantity>[_unit]_total``
(Prometheus conventions: ``_total`` for counters, ``_seconds`` /
``_tuples`` / ``_queries`` units spelled out, gauges bare).  The
component prefixes are stable across releases:

``repro_service_*``
    The serving tier's per-query ledger (submitted, completed,
    cache-served, coalesced, rejected, deferred, cancelled, expired,
    empty) plus the ``latency`` / ``ttfa`` virtual-seconds histograms.
``repro_answer_cache_*``
    Result-cache hits, misses, insertions, evictions, expirations,
    overwrites, and the resident-entry gauge.
``repro_admission_*``
    First-decision counters: accepted, rejected, deferred.
``repro_batcher_*``
    Pending-queries gauge and batches-closed counter.
``repro_engine_*``
    Execution work: stream reads (labelled ``source=...``), probes,
    probe-cache hits, join probes, inserts, split routes, recovery
    queries, and the stream/random-access/join time totals.
``repro_rankmerge_*``
    Answers emitted across every rank-merge.
``repro_state_*``
    State-manager eviction counter and stored-tuples gauge.
``repro_plan_repository_*``
    Per-layer cache ledger, labelled ``layer=expansion|template|
    candidate|plan|fragment``.
``repro_optimizer_*``
    Invocations, measured wall seconds, plans explored, delta grafts.
``repro_router_*``
    Sharded front door only: routed (labelled ``shard=...``),
    spill-overs, front-door cache hits, affinity overrides.

Labels: ``mode`` carries the sharing configuration on engine-side
instruments; ``shard`` is stamped by the fleet merge
(:meth:`MetricsRegistry.merged`); ``source`` / ``layer`` as above.
Label keys are reserved, never repurposed; a tenant label can be added
without breaking any existing consumer.
"""

from repro.obs.instruments import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.records import Metrics, OptimizerRecord, UQRecord
from repro.obs.trace import (
    NO_TRACER,
    NullTracer,
    QueryTrace,
    Span,
    Tracer,
)

__all__ = [
    "NO_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "MetricsRegistry",
    "NullTracer",
    "OptimizerRecord",
    "QueryTrace",
    "Span",
    "Tracer",
    "UQRecord",
]
