"""Run-wide configuration objects.

:class:`ExecutionConfig` gathers every tunable the paper mentions in one
frozen dataclass: the sharing mode (Section 7.1's four configurations),
the batch size (Figure 9), top-k, the network delay model (Section 7
"Delays"), the probe-vs-stream threshold tau(R) (Section 5.1.1), the
clustering thresholds Tm and Tc (Section 6.1), and the state-cache
budget (Section 6.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any


class SharingMode(enum.Enum):
    """The four optimizer/QS-manager configurations of Section 7.1.

    * ``ATC_CQ``   -- baseline: each user query optimized separately and
      subexpression sharing disabled even among its own conjunctive
      queries; every CQ runs as an isolated m-join.
    * ``ATC_UQ``   -- sharing enabled within one user query, disabled
      across user queries.
    * ``ATC_FULL`` -- a single query plan graph executes every user
      query ever received; state is reused across time.
    * ``ATC_CL``   -- user queries are clustered (Section 6.1) and each
      cluster gets its own plan graph and ATC, trading a little sharing
      for much less contention.
    """

    ATC_CQ = "ATC-CQ"
    ATC_UQ = "ATC-UQ"
    ATC_FULL = "ATC-FULL"
    ATC_CL = "ATC-CL"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class DelayModel:
    """Simulated wide-area network costs, in (virtual) seconds.

    The paper adds a Poisson-distributed delay averaging 2 ms to every
    tuple read from a data stream and every join probe against a remote
    DBMS.  ``cpu_probe`` and ``cpu_insert`` model the (much smaller)
    in-memory join work so that "Join time" in Figure 8 is non-zero.
    """

    stream_read_mean: float = 0.002
    random_probe_mean: float = 0.002
    cpu_probe: float = 0.00002
    cpu_insert: float = 0.00001
    deterministic: bool = False

    def __post_init__(self) -> None:
        for name in ("stream_read_mean", "random_probe_mean",
                     "cpu_probe", "cpu_insert"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")


@dataclass(frozen=True)
class ExecutionConfig:
    """Everything a single experiment run needs to know.

    Attributes
    ----------
    mode:
        Which of the four sharing configurations to run.
    k:
        Number of top answers per user query (the paper uses 50).
    batch_size:
        How many user queries the batcher groups before optimizing
        (the paper's default is 5; Figure 9 compares against 1).
    batch_window:
        How long (virtual seconds) the batcher collects queries before
        a partial batch is dispatched anyway -- the paper's "small time
        interval" of Section 3.  The online service's open-loop arrival
        stream closes batches on this timer; the offline batch path
        uses it as the maximum arrival spread within one batch.
    max_cqs_per_uq:
        Cap on candidate networks per keyword query (paper: 20).
    tau_probe_threshold:
        tau(R) of Section 5.1.1: a score-less relation smaller than this
        may still be streamed; larger ones become probe-only sources.
    min_sharing_queries:
        "Useful subexpression" heuristic: minimum number of CQs that
        must share a subexpression for it to become a push-down
        candidate (base streaming relations are always kept).
    low_cardinality_bonus:
        Subexpressions with estimated cardinality below this are also
        deemed useful regardless of sharing degree.
    cluster_min_refs (Tm):
        Section 6.1: a user query joins a source's seed cluster when it
        references the source more than ``Tm`` times.
    cluster_jaccard (Tc):
        Section 6.1: clusters merge while their Jaccard similarity
        exceeds this threshold.
    memory_budget_tuples:
        QS-manager cache budget, measured in stored tuples (Section 6.3).
        ``None`` means unbounded, matching the paper's expectation that
        memory pressure is rare.
    activation_band:
        A new CQ is activated once its score upper bound comes within
        the top-k frontier; this widens the band slightly so that
        near-boundary CQs start streaming early (pure paper behaviour is
        0.0).
    adaptive_probe_ordering:
        The m-join's runtime adaptivity (Section 4.1: probe sequences
        re-ordered from monitored selectivities).  Disable for the
        ablation that measures what the eddy-style adaptivity buys.
    probe_caching:
        Cache remote probe results (Section 7.1: "we cache tuples from
        random probes").  Disable for ablation.
    optimizer_time_scale:
        How much of the optimizer's *measured wall time* is charged to
        the plan graph's virtual clock.  1.0 (default) is the paper's
        accounting ("our timings included query optimization as a
        component"); 0.0 makes runs bit-for-bit deterministic across
        machines and load -- every other virtual cost is seeded -- which
        is what throughput benchmarks comparing sharing modes need.
    scheduler:
        ATC scheduling policy across rank-merge operators.  The paper
        "explored a variety of scheduling schemes, and found that a
        round-robin scheme worked best"; ``"priority"`` (always serve
        the rank-merge with the highest frontier) is the alternative
        the ablation compares against.
    plan_cache:
        Whether the plan repository memoizes optimization work
        (keyword expansion interning, candidate enumeration, best-plan
        search keyed on a reuse fingerprint, delta factorization).
        Disable (``repro serve --no-plan-cache``) to force every batch
        through full optimization -- the escape hatch for debugging
        the repository itself, or for workloads whose templates never
        repeat and would only fill the caches.
    seed:
        Master seed for all stochastic components of the run.
    """

    mode: SharingMode = SharingMode.ATC_FULL
    k: int = 50
    batch_size: int = 5
    batch_window: float = 30.0
    max_cqs_per_uq: int = 20
    tau_probe_threshold: int = 200
    min_sharing_queries: int = 4
    low_cardinality_bonus: int = 100
    cluster_min_refs: int = 2
    cluster_jaccard: float = 0.5
    memory_budget_tuples: int | None = None
    activation_band: float = 0.0
    adaptive_probe_ordering: bool = True
    probe_caching: bool = True
    optimizer_time_scale: float = 1.0
    scheduler: str = "round_robin"
    plan_cache: bool = True
    delays: DelayModel = field(default_factory=DelayModel)
    seed: int = 42

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.batch_window < 0:
            raise ValueError(
                f"batch_window must be non-negative, got {self.batch_window}"
            )
        if self.max_cqs_per_uq <= 0:
            raise ValueError(
                f"max_cqs_per_uq must be positive, got {self.max_cqs_per_uq}"
            )
        if not 0.0 <= self.cluster_jaccard <= 1.0:
            raise ValueError(
                f"cluster_jaccard must lie in [0, 1], got {self.cluster_jaccard}"
            )
        if self.memory_budget_tuples is not None and self.memory_budget_tuples <= 0:
            raise ValueError("memory_budget_tuples must be positive or None")
        if self.optimizer_time_scale < 0:
            raise ValueError(
                f"optimizer_time_scale must be non-negative, "
                f"got {self.optimizer_time_scale}"
            )
        if self.scheduler not in ("round_robin", "priority"):
            raise ValueError(
                f"scheduler must be 'round_robin' or 'priority', "
                f"got {self.scheduler!r}"
            )

    def with_mode(self, mode: SharingMode) -> "ExecutionConfig":
        """Return a copy of this config running under ``mode``."""
        return replace(self, mode=mode)

    def with_overrides(self, **kwargs: Any) -> "ExecutionConfig":
        """Return a copy with arbitrary fields replaced."""
        return replace(self, **kwargs)

    @property
    def shares_within_uq(self) -> bool:
        """Whether subexpressions may be shared among one UQ's CQs."""
        return self.mode is not SharingMode.ATC_CQ

    @property
    def shares_across_uqs(self) -> bool:
        """Whether subexpressions may be shared across user queries."""
        return self.mode in (SharingMode.ATC_FULL, SharingMode.ATC_CL)

    @property
    def reuses_state(self) -> bool:
        """Whether plan state survives between batches for reuse."""
        return self.mode in (SharingMode.ATC_FULL, SharingMode.ATC_CL)
