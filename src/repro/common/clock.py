"""Virtual time.

The paper measures wall-clock latencies that are dominated by simulated
wide-area delays (Poisson, 2 ms mean per tuple read and per remote
probe).  Re-running those experiments with real sleeps would make every
benchmark take hours and be non-deterministic, so this module provides a
**virtual clock**: a monotone counter of simulated seconds that every
source read, remote probe, and join probe advances explicitly.

A :class:`VirtualClock` belongs to one ATC (one query plan graph): all
work scheduled on that graph is serialized on its clock, which is
exactly how the paper's single-threaded-per-graph middleware behaves and
is what produces the contention effect of Section 7.1.  Separate plan
graphs (the ATC-CL and ATC-CQ/UQ configurations) own separate clocks and
therefore proceed in parallel, subject to query arrival times.
"""

from __future__ import annotations


class VirtualClock:
    """A monotone simulated-time counter measured in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start before zero, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (>= 0) and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} (< 0)")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to ``timestamp`` if it is in the future.

        Used when a query *arrives* later than the clock's current
        position: the ATC was idle in between, so time jumps rather than
        accumulating work.  Moving to a past timestamp is a no-op (the
        ATC was busy past that point).
        """
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now:.6f})"


class StopWatch:
    """Accumulates intervals of virtual time under a label.

    The execution-time breakdown of Figure 8 (stream read time, random
    access time, join time) is assembled from stopwatches: operators
    bracket each category of work with :meth:`start`/:meth:`stop` or use
    :meth:`add` for pre-computed durations.
    """

    __slots__ = ("label", "total", "_started_at")

    def __init__(self, label: str) -> None:
        self.label = label
        self.total = 0.0
        self._started_at: float | None = None

    def start(self, clock: VirtualClock) -> None:
        if self._started_at is not None:
            raise RuntimeError(f"stopwatch {self.label!r} already running")
        self._started_at = clock.now

    def stop(self, clock: VirtualClock) -> float:
        if self._started_at is None:
            raise RuntimeError(f"stopwatch {self.label!r} is not running")
        elapsed = clock.now - self._started_at
        self._started_at = None
        self.total += elapsed
        return elapsed

    def add(self, seconds: float) -> None:
        """Accumulate a duration measured externally."""
        if seconds < 0:
            raise ValueError(f"cannot add negative duration {seconds}")
        self.total += seconds
