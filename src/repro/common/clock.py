"""Time, behind one interface.

The paper measures wall-clock latencies that are dominated by simulated
wide-area delays (Poisson, 2 ms mean per tuple read and per remote
probe).  Re-running those experiments with real sleeps would make every
benchmark take hours and be non-deterministic, so this module provides a
**virtual clock**: a monotone counter of simulated seconds that every
source read, remote probe, and join probe advances explicitly.

A :class:`VirtualClock` belongs to one ATC (one query plan graph): all
work scheduled on that graph is serialized on its clock, which is
exactly how the paper's single-threaded-per-graph middleware behaves and
is what produces the contention effect of Section 7.1.  Separate plan
graphs (the ATC-CL and ATC-CQ/UQ configurations) own separate clocks and
therefore proceed in parallel, subject to query arrival times.

The *serving* tier additionally needs real time: an HTTP front end's
arrival instants come from the operating system, not from a replayed
trace.  Both clock families implement the :class:`Clock` protocol --
``now``, ``advance``, ``advance_to`` -- so the service code is written
once against the protocol and a :class:`WallClock` (backed by
``time.monotonic``) can stand in for the virtual one.  ``WallClock``
keeps the same monotonicity contract by maintaining a *floor*: real
time flows on its own, and ``advance``/``advance_to`` can only push the
floor forward (never back), so ``now`` is non-decreasing under any
interleaving of reads and advances -- the property the virtual-clock
call sites rely on.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """The one time contract the serving tier is written against.

    ``now`` is non-decreasing; ``advance`` moves it forward by a
    non-negative delta and ``advance_to`` moves it forward to an
    instant (a past instant is a no-op).  :class:`VirtualClock`
    implements it with an explicit counter, :class:`WallClock` with
    ``time.monotonic`` plus a floor.
    """

    @property
    def now(self) -> float: ...

    def advance(self, seconds: float) -> float: ...

    def advance_to(self, timestamp: float) -> float: ...


class VirtualClock:
    """A monotone simulated-time counter measured in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start before zero, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (>= 0) and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} (< 0)")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to ``timestamp`` if it is in the future.

        Used when a query *arrives* later than the clock's current
        position: the ATC was idle in between, so time jumps rather than
        accumulating work.  Moving to a past timestamp is a no-op (the
        ATC was busy past that point).
        """
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now:.6f})"


class WallClock:
    """Real time with the virtual clock's monotonicity contract.

    ``now`` reads ``time.monotonic`` relative to the clock's origin,
    but never falls below the *floor* that ``advance``/``advance_to``
    maintain: advancing a wall clock declares "this much time is
    already spent", exactly as on the virtual clock, and real time
    catches up on its own.  This keeps every service code path --
    deadline sweeps, TTL grooming, arrival clamping -- valid on both
    clock families, and makes ``WallClock`` satisfy the same
    monotonicity properties ``VirtualClock`` is tested for.
    """

    __slots__ = ("_origin", "_floor")

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start before zero, got {start}")
        self._origin = time.monotonic() - float(start)
        self._floor = float(start)

    @property
    def now(self) -> float:
        """Elapsed real seconds since the origin, at least the floor."""
        return max(time.monotonic() - self._origin, self._floor)

    def advance(self, seconds: float) -> float:
        """Raise the floor ``seconds`` (>= 0) past the current instant
        and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} (< 0)")
        self._floor = self.now + seconds
        return self._floor

    def advance_to(self, timestamp: float) -> float:
        """Raise the floor to ``timestamp`` if it is in the future;
        a past instant is a no-op (real time already covered it)."""
        if timestamp > self._floor:
            self._floor = timestamp
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WallClock(now={self.now:.6f})"


def wall_timer() -> float:
    """The sanctioned real-time source for *observability* timings.

    Trace spans and optimizer wall-time records measure how long this
    process actually worked, which is real time by definition and never
    feeds an answer.  Those sites use this timer instead of reaching
    for :func:`time.perf_counter` directly, so ``repro lint``'s
    clock-discipline rule can keep every other OS-clock access out of
    the codebase: anything that *can* influence an answer must go
    through a :class:`Clock`.
    """
    return time.perf_counter()


class StopWatch:
    """Accumulates intervals of virtual time under a label.

    The execution-time breakdown of Figure 8 (stream read time, random
    access time, join time) is assembled from stopwatches: operators
    bracket each category of work with :meth:`start`/:meth:`stop` or use
    :meth:`add` for pre-computed durations.
    """

    __slots__ = ("label", "total", "_started_at")

    def __init__(self, label: str) -> None:
        self.label = label
        self.total = 0.0
        self._started_at: float | None = None

    def start(self, clock: Clock) -> None:
        if self._started_at is not None:
            raise RuntimeError(f"stopwatch {self.label!r} already running")
        self._started_at = clock.now

    def stop(self, clock: Clock) -> float:
        if self._started_at is None:
            raise RuntimeError(f"stopwatch {self.label!r} is not running")
        elapsed = clock.now - self._started_at
        self._started_at = None
        self.total += elapsed
        return elapsed

    def add(self, seconds: float) -> None:
        """Accumulate a duration measured externally."""
        if seconds < 0:
            raise ValueError(f"cannot add negative duration {seconds}")
        self.total += seconds
