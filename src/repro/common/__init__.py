"""Shared infrastructure: errors, seeded randomness, virtual time, config."""

from repro.common.clock import StopWatch, VirtualClock
from repro.common.config import DelayModel, ExecutionConfig, SharingMode
from repro.common.errors import (
    BudgetExceededError,
    DataError,
    ExecutionError,
    OptimizationError,
    QueryError,
    ReproError,
    SchemaError,
    ScoringError,
    StateError,
)
from repro.common.rng import ZipfSampler, make_rng, poisson_delay, zipf_scores

__all__ = [
    "BudgetExceededError",
    "DataError",
    "DelayModel",
    "ExecutionConfig",
    "ExecutionError",
    "OptimizationError",
    "QueryError",
    "ReproError",
    "SchemaError",
    "ScoringError",
    "SharingMode",
    "StateError",
    "StopWatch",
    "VirtualClock",
    "ZipfSampler",
    "make_rng",
    "poisson_delay",
    "zipf_scores",
]
