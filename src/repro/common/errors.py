"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the major
subsystems: schema/data, query IR, optimization, and execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A schema is malformed or referenced inconsistently.

    Examples: duplicate relation names, a foreign key pointing at a
    relation or attribute that does not exist, or an attribute lookup on
    a relation that lacks it.
    """


class DataError(ReproError):
    """A data operation failed: unknown relation, bad tuple shape, etc."""


class QueryError(ReproError):
    """A conjunctive/user/keyword query is malformed.

    Examples: an atom referencing an unknown relation, a join predicate
    between atoms that are not both present, or a disconnected join
    graph where a connected one is required.
    """


class ScoringError(ReproError):
    """A score function was misused (non-monotone combination, missing
    score attribute, or an upper bound queried for an unknown input)."""


class OptimizationError(ReproError):
    """The optimizer could not produce a valid plan.

    Raised when no valid input assignment exists (which cannot happen if
    all streaming base relations are kept as candidates -- see
    Proposition 1 of the paper) or when internal invariants are violated.
    """


class ExecutionError(ReproError):
    """Runtime failure inside the ATC, an operator, or the QS manager."""


class StateError(ExecutionError):
    """Query-state management failure: grafting onto a missing node,
    evicting pinned state, or recovering state for an unknown epoch."""


class BudgetExceededError(ExecutionError):
    """The execution exceeded its configured resource budget.

    Carries the budget name so harnesses can distinguish memory budgets
    from step budgets.
    """

    def __init__(self, budget: str, limit: float, used: float) -> None:
        self.budget = budget
        self.limit = limit
        self.used = used
        super().__init__(
            f"{budget} budget exceeded: used {used} of allowed {limit}"
        )
