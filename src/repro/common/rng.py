"""Seeded randomness helpers.

All stochastic behaviour in the library (synthetic data, Zipfian draws,
Poisson delays, workload arrival times) flows through a
:class:`random.Random` instance that is always constructed from an
explicit seed, so every experiment is reproducible bit-for-bit.

The helpers here add the two distributions the paper relies on:

* Zipfian draws over a finite universe (scores, join keys, keyword
  popularity; Section 7, "Synthetic workload"), and
* Poisson-distributed network delays (Section 7, "Delays": an average of
  2 milliseconds per stream tuple and per remote probe).
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence
from typing import TypeVar

T = TypeVar("T")


def make_rng(seed: int, *streams: object) -> random.Random:
    """Return a ``random.Random`` derived from ``seed`` and a stream label.

    Distinct ``streams`` labels give statistically independent generators
    for the same master seed, so e.g. data generation and arrival times
    do not perturb one another when one of them draws more values.

    The label is folded in with a *stable* hash (blake2s), never the
    built-in ``hash()``: that one is salted per process, which would
    silently make every "seeded" experiment unreproducible across runs.
    """
    import hashlib

    payload = repr((seed,) + tuple(streams)).encode()
    digest = hashlib.blake2s(payload, digest_size=6).digest()
    return random.Random(int.from_bytes(digest, "big"))


class ZipfSampler:
    """Draw integers in ``[0, n)`` with Zipfian (power-law) frequencies.

    Rank ``r`` (0-based) has unnormalised weight ``1 / (r + 1) ** theta``.
    The default ``theta`` of 1.0 matches the classic Zipf distribution
    the paper uses for scores, join keys, and keyword choice.

    The inverse-CDF table is precomputed, so each draw is a binary
    search: O(log n).
    """

    def __init__(self, n: int, theta: float = 1.0, rng: random.Random | None = None):
        if n <= 0:
            raise ValueError(f"ZipfSampler needs a positive universe, got n={n}")
        if theta < 0:
            raise ValueError(f"theta must be non-negative, got {theta}")
        self.n = n
        self.theta = theta
        self._rng = rng if rng is not None else random.Random(0)
        weights = [1.0 / (rank + 1) ** theta for rank in range(n)]
        total = sum(weights)
        self._cdf: list[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        # Guard against floating point drift at the top end.
        self._cdf[-1] = 1.0

    def sample(self) -> int:
        """Return one rank drawn from the Zipf distribution."""
        u = self._rng.random()
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def sample_many(self, count: int) -> list[int]:
        """Return ``count`` independent draws."""
        return [self.sample() for _ in range(count)]

    def choice(self, items: Sequence[T]) -> T:
        """Draw an element of ``items`` Zipf-weighted by its position."""
        if len(items) != self.n:
            raise ValueError(
                f"ZipfSampler built for n={self.n} cannot choose from "
                f"{len(items)} items"
            )
        return items[self.sample()]


def poisson_delay(rng: random.Random, mean: float) -> float:
    """Draw one delay from an exponential distribution with mean ``mean``.

    The paper's "Poisson-distributed delays with an average of 2 ms"
    describes a Poisson arrival process; per-event gaps in such a process
    are exponentially distributed, which is what we sample here.  A mean
    of zero disables delays entirely.
    """
    if mean < 0:
        raise ValueError(f"delay mean must be non-negative, got {mean}")
    if mean == 0:
        return 0.0
    u = rng.random()
    # Avoid log(0); clamp to a tiny positive probability.
    u = max(u, 1e-12)
    return -mean * math.log(u)


def zipf_scores(rng: random.Random, count: int, distinct: int = 1000,
                theta: float = 1.0) -> list[float]:
    """Return ``count`` scores in (0, 1], Zipfian over ``distinct`` levels.

    High scores are rare: rank 0 maps to score 1.0 and lower ranks decay
    linearly, while rank *frequencies* follow the Zipf law, giving the
    heavy-tailed score columns the synthetic workload calls for.
    """
    sampler = ZipfSampler(distinct, theta=theta, rng=rng)
    out = []
    for _ in range(count):
        rank = sampler.sample()
        out.append(1.0 - rank / distinct)
    return out
