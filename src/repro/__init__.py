"""repro: a reproduction of "Sharing Work in Keyword Search over
Databases" (Jacob & Ives, SIGMOD 2011).

The package implements the Q System's query-processing middleware: a
keyword-search front end over a federation of (simulated) remote
databases, a multi-query optimizer that shares subexpressions within
and across top-k queries, a fully pipelined plan graph of m-joins and
rank-merge operators coordinated by the ATC scheduler, and a query
state manager that grafts, reuses, prunes, and evicts plan state over
time.

Batch quickstart::

    from repro import (
        ExecutionConfig, KeywordQuery, QSystemEngine, SharingMode,
        figure1_federation,
    )

    federation = figure1_federation()
    engine = QSystemEngine(
        federation, ExecutionConfig(mode=SharingMode.ATC_FULL, k=10)
    )
    engine.submit(KeywordQuery("KQ1", ("protein", "plasma membrane"), k=10))
    report = engine.run()
    print(report.answers["KQ1"])

Online service quickstart -- the continuously operating middleware of
Section 2, with answer caching, admission control, and open-loop load
generation (:mod:`repro.service`)::

    from repro import (
        ExecutionConfig, KeywordQuery, LoadConfig, QService, ServiceConfig,
        SharingMode, figure1_federation, generate_load,
    )

    federation = figure1_federation()
    service = QService(
        federation,
        ExecutionConfig(mode=SharingMode.ATC_FULL, k=10, batch_window=2.0),
        ServiceConfig(cache_ttl=300.0, max_in_flight=64),
    )
    # One-off admission along a virtual-time arrival stream:
    ticket = service.submit(KeywordQuery("Q1", ("protein", "gene"),
                                         k=10, arrival=0.0))
    # ... or serve a whole open-loop Poisson/Zipf stream:
    report = service.run(generate_load(federation,
                                       LoadConfig(n_queries=200)))
    print(report.render())   # p50/p95/p99, throughput, cache hit rate
"""

from repro.atc.engine import EngineReport, QSystemEngine
from repro.common.config import DelayModel, ExecutionConfig, SharingMode
from repro.data.biodb import BioDBConfig, biodb_federation
from repro.data.database import Database, Federation
from repro.data.figure1 import figure1_federation, figure1_schema
from repro.data.gus import GUSConfig, gus_federation
from repro.keyword.queries import ConjunctiveQuery, KeywordQuery, UserQuery
from repro.service import (
    LoadConfig,
    QService,
    ServiceConfig,
    ServiceReport,
    ShardedQService,
    ShardedReport,
    Ticket,
    generate_load,
)

__version__ = "1.0.0"

__all__ = [
    "BioDBConfig",
    "ConjunctiveQuery",
    "Database",
    "DelayModel",
    "EngineReport",
    "ExecutionConfig",
    "Federation",
    "GUSConfig",
    "KeywordQuery",
    "LoadConfig",
    "QService",
    "QSystemEngine",
    "ServiceConfig",
    "ServiceReport",
    "ShardedQService",
    "ShardedReport",
    "SharingMode",
    "Ticket",
    "UserQuery",
    "biodb_federation",
    "figure1_federation",
    "figure1_schema",
    "generate_load",
    "gus_federation",
    "__version__",
]
