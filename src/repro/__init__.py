"""repro: a reproduction of "Sharing Work in Keyword Search over
Databases" (Jacob & Ives, SIGMOD 2011).

The package implements the Q System's query-processing middleware: a
keyword-search front end over a federation of (simulated) remote
databases, a multi-query optimizer that shares subexpressions within
and across top-k queries, a fully pipelined plan graph of m-joins and
rank-merge operators coordinated by the ATC scheduler, and a query
state manager that grafts, reuses, prunes, and evicts plan state over
time.

Quickstart::

    from repro import (
        ExecutionConfig, KeywordQuery, QSystemEngine, SharingMode,
        figure1_federation,
    )

    federation = figure1_federation()
    engine = QSystemEngine(
        federation, ExecutionConfig(mode=SharingMode.ATC_FULL, k=10)
    )
    engine.submit(KeywordQuery("KQ1", ("protein", "plasma membrane"), k=10))
    report = engine.run()
    print(report.answers["KQ1"])
"""

from repro.atc.engine import EngineReport, QSystemEngine
from repro.common.config import DelayModel, ExecutionConfig, SharingMode
from repro.data.biodb import BioDBConfig, biodb_federation
from repro.data.database import Database, Federation
from repro.data.figure1 import figure1_federation, figure1_schema
from repro.data.gus import GUSConfig, gus_federation
from repro.keyword.queries import ConjunctiveQuery, KeywordQuery, UserQuery

__version__ = "1.0.0"

__all__ = [
    "BioDBConfig",
    "ConjunctiveQuery",
    "Database",
    "DelayModel",
    "EngineReport",
    "ExecutionConfig",
    "Federation",
    "GUSConfig",
    "KeywordQuery",
    "QSystemEngine",
    "SharingMode",
    "UserQuery",
    "biodb_federation",
    "figure1_federation",
    "figure1_schema",
    "gus_federation",
    "__version__",
]
