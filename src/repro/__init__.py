"""repro: a reproduction of "Sharing Work in Keyword Search over
Databases" (Jacob & Ives, SIGMOD 2011).

The package implements the Q System's query-processing middleware: a
keyword-search front end over a federation of (simulated) remote
databases, a multi-query optimizer that shares subexpressions within
and across top-k queries, a fully pipelined plan graph of m-joins and
rank-merge operators coordinated by the ATC scheduler, and a query
state manager that grafts, reuses, prunes, and evicts plan state over
time.

Batch quickstart::

    from repro import (
        ExecutionConfig, KeywordQuery, QSystemEngine, SharingMode,
        figure1_federation,
    )

    federation = figure1_federation()
    engine = QSystemEngine(
        federation, ExecutionConfig(mode=SharingMode.ATC_FULL, k=10)
    )
    engine.submit(KeywordQuery("KQ1", ("protein", "plasma membrane"), k=10))
    report = engine.run()
    print(report.answers["KQ1"])

Online service quickstart -- the continuously operating middleware of
Section 2 behind the v2 client API: ``submit`` returns a streaming,
cancellable :class:`QueryHandle`, and both the single-node
:class:`QService` and the sharded :class:`ShardedQService` implement
the same :class:`QueryServiceProtocol` (:mod:`repro.service`)::

    from repro import (
        ExecutionConfig, KeywordQuery, LoadConfig, QService, ServiceConfig,
        SharingMode, figure1_federation, generate_load,
    )

    federation = figure1_federation()
    service = QService(
        federation,
        ExecutionConfig(mode=SharingMode.ATC_FULL, k=10, batch_window=2.0),
        ServiceConfig(cache_ttl=300.0, max_in_flight=64),
    )
    # Admit one query along the virtual-time arrival stream; consume
    # its ranked answers progressively as the engine emits them:
    kq = KeywordQuery("Q1", ("protein", "gene"), k=10, arrival=0.0)
    handle = service.submit(kq, deadline=kq.arrival + 30.0)
    for answer in handle.results():          # streams; ends at top-k,
        print(answer)                        # cancel, or deadline
    # Abandon a query the user navigated away from:
    h2 = service.submit(KeywordQuery("Q2", ("gene", "membrane"), k=10,
                                     arrival=1.0))
    h2.cancel()                    # frees its (unshared) plan state
    # ... or serve a whole open-loop Poisson/Zipf stream:
    report = service.run(generate_load(federation,
                                       LoadConfig(n_queries=200)))
    print(report.render())   # p50/p95/p99, TTFA, throughput, hit rates
"""

from repro.atc.engine import EngineReport, QSystemEngine
from repro.common.config import DelayModel, ExecutionConfig, SharingMode
from repro.data.biodb import BioDBConfig, biodb_federation
from repro.data.database import Database, Federation
from repro.data.figure1 import figure1_federation, figure1_schema
from repro.data.gus import GUSConfig, gus_federation
from repro.keyword.queries import ConjunctiveQuery, KeywordQuery, UserQuery
from repro.service import (
    LoadConfig,
    QService,
    QueryHandle,
    QueryServiceProtocol,
    QueryStatus,
    ServiceConfig,
    ServiceReport,
    ShardedQService,
    ShardedReport,
    Ticket,
    generate_abandonments,
    generate_load,
)

__version__ = "2.0.0"

__all__ = [
    "BioDBConfig",
    "ConjunctiveQuery",
    "Database",
    "DelayModel",
    "EngineReport",
    "ExecutionConfig",
    "Federation",
    "GUSConfig",
    "KeywordQuery",
    "LoadConfig",
    "QService",
    "QSystemEngine",
    "QueryHandle",
    "QueryServiceProtocol",
    "QueryStatus",
    "ServiceConfig",
    "ServiceReport",
    "ShardedQService",
    "ShardedReport",
    "SharingMode",
    "Ticket",
    "UserQuery",
    "biodb_federation",
    "figure1_federation",
    "figure1_schema",
    "generate_abandonments",
    "generate_load",
    "gus_federation",
    "__version__",
]
