"""The rank-merge operator (Section 4.1, Figure 6).

One rank-merge per user query.  It merges the output streams of the
user query's conjunctive queries into the top-k answer list, following
the Threshold / No-Random-Access algorithm family of Fagin et al. [7]:

* each CQ stream carries a *threshold* -- an upper bound on the score
  of the next tuple that stream can deliver, derived from the stream's
  intrinsic bound through the CQ's score function;
* a priority queue holds the highest-scoring tuples seen so far;
* the operator emits the top queued tuple once its score is at least
  every stream's threshold (no unseen tuple can beat it), and
* it asks the ATC to read next from the stream whose threshold is
  highest (the read that drops the frontier the most).

Beyond plain TA, the rank-merge drives the paper's *lazy CQ
activation* (the QS manager "incrementally takes the highest-scoring
conjunctive queries ... as execution progresses and the maximum score
of the next result drops, further conjunctive queries can be
activated") and its *pruning* rule ("once a conjunctive query ... can
no longer contribute to top-k output -- its threshold is lower than the
kth tuple in the ranking queue -- it gets unlinked and deactivated",
Section 6.3).  Recovery queries (Algorithm 2) register here as extra
streams for their CQ, "just another ranked input".
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field

from repro.common.errors import ExecutionError
from repro.data.rows import STuple
from repro.keyword.queries import ConjunctiveQuery, RankedAnswer, UserQuery
from repro.operators.nodes import Supplier

_EPSILON = 1e-9


@dataclass
class CQStreamEntry:
    """One registered input stream: a CQ's live plan or a recovery query."""

    stream_id: str
    cq: ConjunctiveQuery
    supplier: Supplier
    kind: str = "live"
    active: bool = True
    delivered: int = 0

    def threshold(self) -> float:
        """Upper bound on the score of this stream's next tuple."""
        return self.cq.score.bound_from_intrinsic(self.supplier.bound())

    @property
    def exhausted(self) -> bool:
        return self.supplier.bound() == -math.inf


class _EntryAdapter:
    """Consumer adapter wiring one supplier port into the rank-merge."""

    def __init__(self, merge: "RankMerge", entry: CQStreamEntry) -> None:
        self.merge = merge
        self.entry = entry

    def on_arrival(self, supplier: Supplier, tup: STuple) -> None:
        self.merge.ingest(self.entry, tup)


@dataclass
class _Candidate:
    score: float
    answer: RankedAnswer
    tup: STuple = field(repr=False)


class RankMerge:
    """Top-k merge over a user query's conjunctive-query streams."""

    def __init__(self, uq: UserQuery) -> None:
        self.uq = uq
        self.k = uq.k
        self.entries: dict[str, CQStreamEntry] = {}
        #: CQs optimized but not yet instantiated in the plan graph,
        #: highest upper bound first.
        self.pending: list[ConjunctiveQuery] = list(uq.cqs)
        self.emitted: list[_Candidate] = []
        self._heap: list[tuple[float, int, _Candidate]] = []
        self._counter = itertools.count()
        self._seen: set[tuple[str, frozenset]] = set()
        self.complete = False
        self.activations = 0

    # -- registration ---------------------------------------------------------

    def register_stream(self, cq: ConjunctiveQuery, supplier: Supplier,
                        kind: str = "live") -> CQStreamEntry:
        """Attach a supplier as a stream for ``cq``; returns the entry.

        The CQ is removed from the pending list on its first (live)
        registration.  The returned entry's adapter is appended to the
        supplier's consumers, so tuple flow starts immediately.
        """
        suffix = kind if kind != "live" else "live"
        stream_id = f"{cq.cq_id}:{suffix}:{len(self.entries)}"
        entry = CQStreamEntry(stream_id, cq, supplier, kind=kind)
        self.entries[stream_id] = entry
        supplier.consumers.append(_EntryAdapter(self, entry))
        if kind == "live":
            self.pending = [p for p in self.pending if p.cq_id != cq.cq_id]
            self.activations += 1
        return entry

    def drop_pending(self, cq_id: str) -> None:
        self.pending = [p for p in self.pending if p.cq_id != cq_id]

    # -- data flow ---------------------------------------------------------------

    def ingest(self, entry: CQStreamEntry, tup: STuple) -> None:
        """Receive one result tuple from a CQ stream."""
        if self.complete:
            return
        key = (entry.cq.cq_id, tup.provenance)
        if key in self._seen:
            return
        self._seen.add(key)
        entry.delivered += 1
        score = entry.cq.score.score(tup)
        candidate = _Candidate(
            score=score,
            answer=RankedAnswer(self.uq.uq_id, entry.cq.cq_id, score,
                                tup.provenance),
            tup=tup,
        )
        heapq.heappush(self._heap, (-score, next(self._counter), candidate))

    # -- thresholds -----------------------------------------------------------------

    def active_entries(self) -> list[CQStreamEntry]:
        return [e for e in self.entries.values() if e.active]

    def max_active_threshold(self) -> float:
        thresholds = [e.threshold() for e in self.active_entries()]
        return max(thresholds, default=-math.inf)

    def max_pending_bound(self) -> float:
        return max((cq.upper_bound for cq in self.pending), default=-math.inf)

    def frontier(self) -> float:
        """The emission gate: no unseen tuple can score above this."""
        return max(self.max_active_threshold(), self.max_pending_bound())

    def kth_ranked_score(self) -> float:
        """Score of the k-th best tuple currently known (emitted or
        queued); ``-inf`` if fewer than k are known.  This is the
        pruning frontier of Section 6.3."""
        needed = self.k - len(self.emitted)
        if needed <= 0:
            return self.emitted[-1].score if self.emitted else -math.inf
        if len(self._heap) < needed:
            return -math.inf
        top_scores = heapq.nsmallest(needed, self._heap)
        return -top_scores[-1][0]

    # -- control decisions -------------------------------------------------------------

    def should_activate(self) -> bool:
        """Whether the emission frontier is currently held up by a CQ
        that has not started executing (so the QS manager must graft
        it)."""
        if self.complete or not self.pending:
            return False
        pending_bound = self.max_pending_bound()
        kth = self.kth_ranked_score()
        if pending_bound <= kth + _EPSILON:
            # No pending CQ can beat what we already hold: they will be
            # pruned, not activated.
            return False
        active_bound = self.max_active_threshold()
        top = self.peek_score()
        if top is not None and top + _EPSILON >= self.frontier():
            return False  # we can emit without activating anything
        return pending_bound > active_bound - _EPSILON

    def next_pending(self) -> ConjunctiveQuery:
        if not self.pending:
            raise ExecutionError(f"{self.uq.uq_id}: no pending CQs left")
        return self.pending[0]

    def peek_score(self) -> float | None:
        if not self._heap:
            return None
        return -self._heap[0][0]

    def preferred_entry(self) -> CQStreamEntry | None:
        """The active, non-exhausted stream with the highest threshold:
        the read the paper says "will drop the score threshold the
        most"."""
        best: CQStreamEntry | None = None
        best_threshold = -math.inf
        for entry in self.active_entries():
            if entry.exhausted:
                continue
            threshold = entry.threshold()
            if threshold > best_threshold:
                best_threshold = threshold
                best = entry
        return best

    # -- emission ---------------------------------------------------------------------

    def try_emit(self) -> list[RankedAnswer]:
        """Emit every queued tuple whose score clears the frontier."""
        out: list[RankedAnswer] = []
        while not self.complete and self._heap:
            top_score = -self._heap[0][0]
            if top_score + _EPSILON < self.frontier():
                break
            _neg, _seq, candidate = heapq.heappop(self._heap)
            self.emitted.append(candidate)
            out.append(candidate.answer)
            if len(self.emitted) >= self.k:
                self.complete = True
        self._prune_useless()
        return out

    def _prune_useless(self) -> None:
        """Deactivate streams and drop pending CQs that can no longer
        contribute to the top-k."""
        kth = self.kth_ranked_score()
        if kth == -math.inf:
            return
        for entry in self.active_entries():
            if entry.threshold() + _EPSILON < kth:
                entry.active = False
        self.pending = [
            cq for cq in self.pending if cq.upper_bound + _EPSILON >= kth
        ]

    def finalize(self) -> list[RankedAnswer]:
        """Flush when every stream is exhausted and nothing is pending:
        the remaining queue *is* the rest of the answer."""
        out: list[RankedAnswer] = []
        while self._heap and len(self.emitted) < self.k:
            _neg, _seq, candidate = heapq.heappop(self._heap)
            self.emitted.append(candidate)
            out.append(candidate.answer)
        self.complete = True
        return out

    def all_streams_done(self) -> bool:
        return all(e.exhausted or not e.active
                   for e in self.entries.values())

    @property
    def answers(self) -> list[RankedAnswer]:
        return [c.answer for c in self.emitted]

    def answer_tuples(self) -> list[tuple[RankedAnswer, STuple]]:
        return [(c.answer, c.tup) for c in self.emitted]

    def __repr__(self) -> str:
        return (f"RankMerge({self.uq.uq_id}, emitted={len(self.emitted)}/"
                f"{self.k}, streams={len(self.entries)}, "
                f"pending={len(self.pending)}, complete={self.complete})")
