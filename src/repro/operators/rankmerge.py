"""The rank-merge operator (Section 4.1, Figure 6).

One rank-merge per user query.  It merges the output streams of the
user query's conjunctive queries into the top-k answer list, following
the Threshold / No-Random-Access algorithm family of Fagin et al. [7]:

* each CQ stream carries a *threshold* -- an upper bound on the score
  of the next tuple that stream can deliver, derived from the stream's
  intrinsic bound through the CQ's score function;
* a priority queue holds the highest-scoring tuples seen so far;
* the operator emits the top queued tuple once its score is at least
  every stream's threshold (no unseen tuple can beat it), and
* it asks the ATC to read next from the stream whose threshold is
  highest (the read that drops the frontier the most).

Beyond plain TA, the rank-merge drives the paper's *lazy CQ
activation* (the QS manager "incrementally takes the highest-scoring
conjunctive queries ... as execution progresses and the maximum score
of the next result drops, further conjunctive queries can be
activated") and its *pruning* rule ("once a conjunctive query ... can
no longer contribute to top-k output -- its threshold is lower than the
kth tuple in the ranking queue -- it gets unlinked and deactivated",
Section 6.3).  Recovery queries (Algorithm 2) register here as extra
streams for their CQ, "just another ranked input".
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field

from repro.common.errors import ExecutionError
from repro.data.rows import STuple
from repro.keyword.queries import ConjunctiveQuery, RankedAnswer, UserQuery
from repro.operators.nodes import Supplier

_EPSILON = 1e-9


@dataclass
class CQStreamEntry:
    """One registered input stream: a CQ's live plan or a recovery query."""

    stream_id: str
    cq: ConjunctiveQuery
    supplier: Supplier
    kind: str = "live"
    active: bool = True
    delivered: int = 0

    def threshold(self) -> float:
        """Upper bound on the score of this stream's next tuple."""
        return self.cq.score.bound_from_intrinsic(self.supplier.bound())

    @property
    def exhausted(self) -> bool:
        return self.supplier.bound() == -math.inf


class _EntryAdapter:
    """Consumer adapter wiring one supplier port into the rank-merge."""

    def __init__(self, merge: "RankMerge", entry: CQStreamEntry) -> None:
        self.merge = merge
        self.entry = entry

    def on_arrival(self, supplier: Supplier, tup: STuple) -> None:
        self.merge.ingest(self.entry, tup)

    def on_supplier_bound_dirty(self) -> None:
        """The stream's bound moved: queue a threshold recompute."""
        self.merge._thr_dirty.add(self.entry.stream_id)


class _TopKTracker:
    """Min-heap of the best ``size`` scores seen, with lazy deletion.

    Maintains the pruning frontier (the k-th ranked score of Section
    6.3) incrementally, replacing the ``heapq.nsmallest`` full-heap
    rescan the rank-merge used to run after every emission.  Deleted
    scores are maxima at deletion time, so they sink in the min-heap
    and are settled out only when they surface.
    """

    __slots__ = ("_heap", "_deleted", "size")

    def __init__(self) -> None:
        self._heap: list[float] = []
        self._deleted: dict[float, int] = {}
        self.size = 0

    def _settle(self) -> None:
        heap, deleted = self._heap, self._deleted
        while heap:
            pending = deleted.get(heap[0], 0)
            if not pending:
                return
            value = heapq.heappop(heap)
            if pending == 1:
                del deleted[value]
            else:
                deleted[value] = pending - 1

    def push(self, value: float) -> None:
        heapq.heappush(self._heap, value)
        self.size += 1

    def peek_min(self) -> float:
        self._settle()
        return self._heap[0]

    def pop_min(self) -> float:
        self._settle()
        self.size -= 1
        return heapq.heappop(self._heap)

    def remove(self, value: float) -> None:
        """Logically delete one instance of ``value`` (must be present)."""
        self._deleted[value] = self._deleted.get(value, 0) + 1
        self.size -= 1


@dataclass
class _Candidate:
    score: float
    answer: RankedAnswer
    tup: STuple = field(repr=False)


class RankMerge:
    """Top-k merge over a user query's conjunctive-query streams."""

    def __init__(self, uq: UserQuery, clock=None) -> None:
        self.uq = uq
        self.k = uq.k
        self.entries: dict[str, CQStreamEntry] = {}
        #: CQs optimized but not yet instantiated in the plan graph,
        #: highest upper bound first.
        self.pending: list[ConjunctiveQuery] = list(uq.cqs)
        self.emitted: list[_Candidate] = []
        self._heap: list[tuple[float, int, _Candidate]] = []
        self._counter = itertools.count()
        self._seen: set[tuple[str, frozenset]] = set()
        self.complete = False
        self.activations = 0
        #: The plan graph's virtual clock (optional; the engine wires
        #: it so the first emission can be timestamped for TTFA).
        self._clock = clock
        #: Virtual instant the first answer left this operator, or
        #: ``None`` -- the time-to-first-answer anchor.
        self.first_emitted_at: float | None = None
        #: Set when the query was retired early ("cancelled" or
        #: "expired") rather than emitting its full top-k; the service
        #: harvest reads it to classify the handle's terminal state.
        self.terminated: str | None = None
        #: Incremental threshold maintenance: a lazy max-heap over the
        #: entries' thresholds.  Stream-bound changes mark entries dirty
        #: (via their adapters); queries flush the dirty set and settle
        #: stale heap tops, so ``preferred_entry`` / the frontier cost
        #: O(log n) amortized instead of re-walking every stream's plan
        #: chain.  Heap items are ``(-threshold, registration_seq,
        #: stream_id)``; the seq preserves the original first-registered
        #: tie-break.
        self._thr_heap: list[tuple[float, int, str]] = []
        self._thr_cached: dict[str, float] = {}
        self._thr_dirty: set[str] = set()
        self._thr_seq: dict[str, int] = {}
        #: Maintained top-(k - emitted) frontier over queued candidates.
        self._topk = _TopKTracker()
        #: Cached ``max_pending_bound`` (pending mutates rarely).
        self._pending_bound = max(
            (cq.upper_bound for cq in self.pending), default=-math.inf)

    # -- registration ---------------------------------------------------------

    def register_stream(self, cq: ConjunctiveQuery, supplier: Supplier,
                        kind: str = "live") -> CQStreamEntry:
        """Attach a supplier as a stream for ``cq``; returns the entry.

        The CQ is removed from the pending list on its first (live)
        registration.  The returned entry's adapter is appended to the
        supplier's consumers, so tuple flow starts immediately.
        """
        suffix = kind if kind != "live" else "live"
        stream_id = f"{cq.cq_id}:{suffix}:{len(self.entries)}"
        entry = CQStreamEntry(stream_id, cq, supplier, kind=kind)
        self._thr_seq[stream_id] = len(self.entries)
        self.entries[stream_id] = entry
        self._thr_dirty.add(stream_id)
        supplier.consumers.append(_EntryAdapter(self, entry))
        if kind == "live":
            self.pending = [p for p in self.pending if p.cq_id != cq.cq_id]
            self._recompute_pending_bound()
            self.activations += 1
        return entry

    def drop_pending(self, cq_id: str) -> None:
        self.pending = [p for p in self.pending if p.cq_id != cq_id]
        self._recompute_pending_bound()

    def _recompute_pending_bound(self) -> None:
        self._pending_bound = max(
            (cq.upper_bound for cq in self.pending), default=-math.inf)

    # -- data flow ---------------------------------------------------------------

    def ingest(self, entry: CQStreamEntry, tup: STuple) -> None:
        """Receive one result tuple from a CQ stream."""
        if self.complete:
            return
        key = (entry.cq.cq_id, tup.provenance)
        if key in self._seen:
            return
        self._seen.add(key)
        entry.delivered += 1
        score = entry.cq.score.score(tup)
        candidate = _Candidate(
            score=score,
            answer=RankedAnswer(self.uq.uq_id, entry.cq.cq_id, score,
                                tup.provenance),
            tup=tup,
        )
        heapq.heappush(self._heap, (-score, next(self._counter), candidate))
        needed = self.k - len(self.emitted)
        if needed > 0:
            topk = self._topk
            if topk.size < needed:
                topk.push(score)
            elif score > topk.peek_min():
                topk.pop_min()
                topk.push(score)

    # -- thresholds -----------------------------------------------------------------

    def active_entries(self) -> list[CQStreamEntry]:
        return [e for e in self.entries.values() if e.active]

    def _flush_thresholds(self) -> None:
        """Recompute the thresholds of dirty entries into the lazy heap."""
        if not self._thr_dirty:
            return
        for stream_id in self._thr_dirty:
            entry = self.entries[stream_id]
            threshold = entry.threshold()
            self._thr_cached[stream_id] = threshold
            heapq.heappush(self._thr_heap,
                           (-threshold, self._thr_seq[stream_id], stream_id))
        self._thr_dirty.clear()
        if len(self._thr_heap) > 4 * len(self.entries) + 64:
            # Compact stale residue so the heap stays O(entries).
            self._thr_heap = [
                (-t, self._thr_seq[sid], sid)
                for sid, t in self._thr_cached.items()
                if self.entries[sid].active
            ]
            heapq.heapify(self._thr_heap)

    def max_active_threshold(self) -> float:
        self._flush_thresholds()
        heap = self._thr_heap
        while heap:
            neg_t, _seq, stream_id = heap[0]
            if (self._thr_cached[stream_id] != -neg_t
                    or not self.entries[stream_id].active):
                heapq.heappop(heap)   # stale value / deactivated forever
                continue
            return -neg_t
        return -math.inf

    def max_pending_bound(self) -> float:
        return self._pending_bound

    def frontier(self) -> float:
        """The emission gate: no unseen tuple can score above this."""
        return max(self.max_active_threshold(), self._pending_bound)

    def kth_ranked_score(self) -> float:
        """Score of the k-th best tuple currently known (emitted or
        queued); ``-inf`` if fewer than k are known.  This is the
        pruning frontier of Section 6.3, read off the maintained
        top-k tracker in O(1)."""
        needed = self.k - len(self.emitted)
        if needed <= 0:
            return self.emitted[-1].score if self.emitted else -math.inf
        if len(self._heap) < needed:
            return -math.inf
        return self._topk.peek_min()

    # -- control decisions -------------------------------------------------------------

    def should_activate(self) -> bool:
        """Whether the emission frontier is currently held up by a CQ
        that has not started executing (so the QS manager must graft
        it)."""
        if self.complete or not self.pending:
            return False
        pending_bound = self.max_pending_bound()
        kth = self.kth_ranked_score()
        if pending_bound <= kth + _EPSILON:
            # No pending CQ can beat what we already hold: they will be
            # pruned, not activated.
            return False
        active_bound = self.max_active_threshold()
        top = self.peek_score()
        if top is not None and top + _EPSILON >= self.frontier():
            return False  # we can emit without activating anything
        return pending_bound > active_bound - _EPSILON

    def next_pending(self) -> ConjunctiveQuery:
        if not self.pending:
            raise ExecutionError(f"{self.uq.uq_id}: no pending CQs left")
        return self.pending[0]

    def peek_score(self) -> float | None:
        if not self._heap:
            return None
        return -self._heap[0][0]

    def preferred_entry(self) -> CQStreamEntry | None:
        """The active, non-exhausted stream with the highest threshold:
        the read the paper says "will drop the score threshold the
        most".  O(log n) amortized off the maintained threshold heap;
        ties go to the earliest-registered entry, matching the original
        scan order."""
        self._flush_thresholds()
        heap = self._thr_heap
        while heap:
            neg_t, seq, stream_id = heap[0]
            entry = self.entries[stream_id]
            if self._thr_cached[stream_id] != -neg_t or not entry.active:
                heapq.heappop(heap)
                continue
            if neg_t == math.inf:
                # Exhausted (and any other -inf-threshold) streams are
                # never preferred; nothing above them remains either.
                return None
            if entry.exhausted:
                # Stale cache: plan-graph suppliers push invalidations,
                # but a duck-typed supplier that drained silently must
                # not deadlock the scheduler.  Refresh and re-settle.
                threshold = entry.threshold()
                self._thr_cached[stream_id] = threshold
                heapq.heappush(heap, (-threshold, seq, stream_id))
                continue
            return entry
        return None

    # -- emission ---------------------------------------------------------------------

    def _note_emission(self) -> None:
        if self.first_emitted_at is None and self._clock is not None:
            self.first_emitted_at = self._clock.now

    def terminate(self, how: str) -> None:
        """Retire the query early (``"cancelled"`` or ``"expired"``):
        mark the merge complete with whatever has been emitted so far.
        Stream unlinking is the state manager's job; this only settles
        the operator's own lifecycle."""
        if self.complete:
            return
        self.terminated = how
        self.complete = True

    def try_emit(self) -> list[RankedAnswer]:
        """Emit every queued tuple whose score clears the frontier."""
        out: list[RankedAnswer] = []
        while not self.complete and self._heap:
            top_score = -self._heap[0][0]
            if top_score + _EPSILON < self.frontier():
                break
            _neg, _seq, candidate = heapq.heappop(self._heap)
            if self.k - len(self.emitted) > 0:
                # The emitted candidate is the queued maximum, so it is
                # tracked; shrink the frontier window with it.
                self._topk.remove(candidate.score)
            self.emitted.append(candidate)
            out.append(candidate.answer)
            if len(self.emitted) >= self.k:
                self.complete = True
        if out:
            self._note_emission()
        self._prune_useless()
        return out

    def _prune_useless(self) -> None:
        """Deactivate streams and drop pending CQs that can no longer
        contribute to the top-k."""
        kth = self.kth_ranked_score()
        if kth == -math.inf:
            return
        self._flush_thresholds()
        for entry in self.active_entries():
            if self._thr_cached[entry.stream_id] + _EPSILON < kth:
                entry.active = False
        if any(cq.upper_bound + _EPSILON < kth for cq in self.pending):
            self.pending = [
                cq for cq in self.pending if cq.upper_bound + _EPSILON >= kth
            ]
            self._recompute_pending_bound()

    def finalize(self) -> list[RankedAnswer]:
        """Flush when every stream is exhausted and nothing is pending:
        the remaining queue *is* the rest of the answer."""
        out: list[RankedAnswer] = []
        while self._heap and len(self.emitted) < self.k:
            _neg, _seq, candidate = heapq.heappop(self._heap)
            self.emitted.append(candidate)
            out.append(candidate.answer)
        if out:
            self._note_emission()
        self.complete = True
        return out

    def all_streams_done(self) -> bool:
        return all(e.exhausted or not e.active
                   for e in self.entries.values())

    @property
    def answers(self) -> list[RankedAnswer]:
        return [c.answer for c in self.emitted]

    def answer_tuples(self) -> list[tuple[RankedAnswer, STuple]]:
        return [(c.answer, c.tup) for c in self.emitted]

    def __repr__(self) -> str:
        return (f"RankMerge({self.uq.uq_id}, emitted={len(self.emitted)}/"
                f"{self.k}, streams={len(self.entries)}, "
                f"pending={len(self.pending)}, complete={self.complete})")
