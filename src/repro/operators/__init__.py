"""Execution operators: access modules, m-joins, rank-merge."""

from repro.operators.access import AccessModule, ModuleProbeView
from repro.operators.nodes import (
    InputUnit,
    MJoinNode,
    ProbeTarget,
    RecoveryUnit,
    Supplier,
)
from repro.operators.rankmerge import CQStreamEntry, RankMerge

__all__ = [
    "AccessModule",
    "CQStreamEntry",
    "InputUnit",
    "MJoinNode",
    "ModuleProbeView",
    "ProbeTarget",
    "RankMerge",
    "RecoveryUnit",
    "Supplier",
]
