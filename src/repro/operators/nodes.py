"""Plan-graph operator nodes: input units and adaptive m-joins.

The query plan graph (Section 4) is a DAG whose vertices *supply*
score-ordered tuple streams to downstream consumers:

* :class:`InputUnit` wraps one input ``J`` of the input assignment
  ``(I, I-map)``: a streaming source plus the shared
  :class:`~repro.operators.access.AccessModule` all consuming m-joins
  probe (the STeM of [24]).

* :class:`RecoveryUnit` wraps the free replay stream of Algorithm 2 --
  a module's pre-epoch linked list -- and deliberately does *not*
  re-insert tuples into any module.

* :class:`MJoinNode` is the m-join / STeM-eddy operator: it consumes
  one or more supplier streams, probes the other suppliers' modules and
  the random-access sources according to an adaptively re-ordered probe
  sequence, buffers join results, and *releases* them in nonincreasing
  intrinsic-score order gated by an HRJN-style corner bound -- which is
  what entitles downstream operators to treat every edge of the plan
  graph as a sorted stream.

The *split operator* of the paper is realised by the ``consumers`` fan
out list present on every supplier: a supplier with more than one
consumer is a split (the plan graph reports it as such).
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections.abc import Mapping, Sequence
from typing import Any, Protocol

from repro.common.clock import VirtualClock
from repro.common.config import DelayModel
from repro.common.errors import ExecutionError
from repro.data.rows import STuple
from repro.data.sources import EXHAUSTED, ListSource, RandomAccessSource, StreamingSource
from repro.operators.access import AccessModule, ModuleProbeView
from repro.plan.expressions import SPJ, JoinPred
from repro.obs.records import Metrics


class Consumer(Protocol):
    """Anything that receives released tuples from a supplier."""

    def on_arrival(self, supplier: "Supplier", tup: STuple) -> None: ...


def notify_bound_dirty(consumers: Sequence[Any]) -> None:
    """Tell every consumer that its supplier's bound may have changed.

    Consumers that maintain memoized bounds (m-joins) or threshold
    indexes (rank-merge entry adapters) implement
    ``on_supplier_bound_dirty``; anything else is skipped.  Propagation
    stops at consumers that are already dirty, so a burst of arrivals
    costs amortized O(1) invalidations per edge rather than one graph
    walk per tuple -- the fix for the accidentally-quadratic threshold
    maintenance this module used to do on every scheduling step.
    """
    for consumer in consumers:
        callback = getattr(consumer, "on_supplier_bound_dirty", None)
        if callback is not None:
            callback()


class Supplier(Protocol):
    """Anything that emits a sorted stream into the plan graph."""

    name: str
    expr: SPJ
    consumers: list[Consumer]
    module: AccessModule | None

    def bound(self) -> float: ...


class InputUnit:
    """One streaming input ``J``: source + shared state module.

    Reading a tuple inserts it into the module (under the graph's
    current epoch) and fans it out to every consumer -- the fan-out is
    the split operator.  The module is shared by all m-joins that probe
    this input, and it is the state that later queries reuse.
    """

    def __init__(self, name: str, expr: SPJ,
                 source: StreamingSource | ListSource,
                 clock: VirtualClock, metrics: Metrics,
                 delays: DelayModel) -> None:
        self.name = name
        self.expr = expr
        self.source = source
        self.module = AccessModule(f"module:{name}")
        self.consumers: list[Consumer] = []
        self.clock = clock
        self.metrics = metrics
        self.delays = delays
        self.pinned = False
        self.last_used_epoch = 0

    def bound(self) -> float:
        return self.source.bound()

    @property
    def exhausted(self) -> bool:
        return self.source.exhausted

    @property
    def tuples_read(self) -> int:
        return self.source.tuples_read

    def read_and_route(self, epoch: int) -> STuple | None:
        """Pull one tuple from the source, store it, fan it out."""
        tup = self.source.read()
        if tup is None:
            return None
        self.module.insert(tup, epoch)
        self.clock.advance(self.delays.cpu_insert)
        self.metrics.record_insert(self.delays.cpu_insert)
        self.last_used_epoch = epoch
        notify_bound_dirty(self.consumers)
        for consumer in list(self.consumers):
            consumer.on_arrival(self, tup)
        return tup

    def readable(self) -> bool:
        return not self.source.exhausted

    def __repr__(self) -> str:
        return (f"InputUnit({self.name!r}, read={self.tuples_read}, "
                f"consumers={len(self.consumers)})")


class RecoveryUnit:
    """The replay stream ``J^e`` of Algorithm 2.

    Reads are free (the tuples are already in memory, already paid
    for), and nothing is re-inserted into modules -- the state already
    exists; re-inserting would duplicate it.
    """

    def __init__(self, name: str, expr: SPJ, tuples: Sequence[STuple],
                 metrics: Metrics) -> None:
        self.name = name
        self.expr = expr
        self.source = ListSource(name, tuples, charge_free=True,
                                 metrics=metrics)
        self.module: AccessModule | None = None
        self.consumers: list[Consumer] = []
        self.metrics = metrics

    def bound(self) -> float:
        return self.source.bound()

    @property
    def exhausted(self) -> bool:
        return self.source.exhausted

    def read_and_route(self, epoch: int) -> STuple | None:
        tup = self.source.read()  # counts as reuse inside the source
        if tup is None:
            return None
        notify_bound_dirty(self.consumers)
        for consumer in list(self.consumers):
            consumer.on_arrival(self, tup)
        return tup

    def readable(self) -> bool:
        return not self.source.exhausted

    def __repr__(self) -> str:
        return f"RecoveryUnit({self.name!r}, remaining={self.source.remaining()})"


class ProbeTarget:
    """One step of an m-join probe sequence: resolves a set of aliases.

    ``lookup`` answers "which stored/probe-able tuples join with this
    partial binding" -- backed by a shared module (stream inputs), a
    pre-epoch module view (recovery), or a remote random-access source
    (probe atoms).
    """

    def __init__(self, name: str, aliases: frozenset[str],
                 kind: str,
                 module: AccessModule | None = None,
                 before_epoch: int | None = None,
                 ra_source: RandomAccessSource | None = None,
                 ra_alias: str | None = None,
                 ra_contribution: float = 0.0) -> None:
        if kind not in ("module", "view", "random"):
            raise ExecutionError(f"unknown probe target kind {kind!r}")
        self.name = name
        self.aliases = aliases
        self.kind = kind
        self.module = module
        self.before_epoch = before_epoch
        self.ra_source = ra_source
        self.ra_alias = ra_alias
        self.probes = 0
        self.matches = 0

    def lookup(self, alias: str, attr: str, value: Any) -> list[STuple]:
        if self.kind in ("module", "view"):
            assert self.module is not None
            self.module.ensure_index(alias, attr)
            return self.module.probe(alias, attr, value,
                                     before_epoch=self.before_epoch)
        assert self.ra_source is not None and self.ra_alias is not None
        return self.ra_source.probe_stuples(self.ra_alias, attr, value)

    @property
    def observed_fanout(self) -> float:
        """Matches per probe so far; optimistic 1.0 before evidence."""
        if self.probes == 0:
            return 1.0
        return self.matches / self.probes

    def __repr__(self) -> str:
        return f"ProbeTarget({self.name!r}, kind={self.kind})"


class MJoinNode:
    """Adaptive m-way join over supplier streams and probe targets.

    Parameters
    ----------
    expr:
        The full expression this component computes.  Its aliases are
        the disjoint union of the supplier expressions' aliases and the
        probed atoms.
    suppliers:
        Upstream stream inputs (InputUnits, RecoveryUnits, or other
        MJoinNodes).  Their modules hold the probe-able state.
    probe_targets:
        Targets for the aliases not covered by any supplier.
    caps:
        Per-alias intrinsic contribution caps (for corner bounds).
    resequence_interval:
        Re-derive the probe order from monitored selectivities every
        this many arrivals (the runtime adaptivity of [24]).
    """

    def __init__(self, name: str, expr: SPJ,
                 suppliers: Sequence[Supplier],
                 probe_targets: Sequence[ProbeTarget],
                 caps: Mapping[str, float],
                 clock: VirtualClock, metrics: Metrics,
                 delays: DelayModel,
                 epoch_of: Any,
                 resequence_interval: int = 64,
                 before_epoch: int | None = None,
                 adaptive: bool = True) -> None:
        self.name = name
        self.expr = expr
        self.suppliers = list(suppliers)
        self.probe_targets = list(probe_targets)
        self.caps = dict(caps)
        self.clock = clock
        self.metrics = metrics
        self.delays = delays
        self._epoch_of = epoch_of
        self.resequence_interval = resequence_interval
        self.before_epoch = before_epoch
        self.adaptive = adaptive
        self.module = AccessModule(f"module:{name}")
        self.consumers: list[Consumer] = []
        self.pinned = False
        self.last_used_epoch = 0

        covered: set[str] = set()
        for supplier in self.suppliers:
            overlap = covered & set(supplier.expr.aliases)
            if overlap:
                raise ExecutionError(
                    f"{name}: suppliers overlap on aliases {sorted(overlap)}"
                )
            covered.update(supplier.expr.aliases)
        for target in self.probe_targets:
            covered.update(target.aliases)
        if covered != set(expr.aliases):
            raise ExecutionError(
                f"{name}: inputs cover {sorted(covered)} but expression "
                f"needs {sorted(expr.aliases)}"
            )
        # Supplier-module probe targets for stream inputs: when a tuple
        # arrives from one supplier, the others are probed via their
        # shared modules (or pre-epoch views for recovery nodes).
        self._supplier_targets: dict[int, ProbeTarget] = {}
        for idx, supplier in enumerate(self.suppliers):
            if supplier.module is None:
                continue
            kind = "module" if before_epoch is None else "view"
            self._supplier_targets[idx] = ProbeTarget(
                f"{name}<-{supplier.name}",
                frozenset(supplier.expr.aliases),
                kind,
                module=supplier.module,
                before_epoch=before_epoch,
            )
        self._crossing_preds = self._compute_crossing_preds()
        self._ensure_indexes()
        self._buffer: list[tuple[float, int, STuple]] = []
        self._counter = itertools.count()
        self._arrivals = 0
        self._released = 0
        # Corner bounds are evaluated on every scheduling step; cache
        # the per-supplier cap totals so each evaluation is O(streams).
        self._supplier_tops = [
            sum(self.caps[a] for a in s.expr.aliases) for s in self.suppliers
        ]
        self._tops_total = sum(self._supplier_tops)
        self._probe_cap = sum(
            self._top_of(t.aliases) for t in self.probe_targets
        )
        #: Memoized corner bound; ``None`` means dirty.  Invalidated by
        #: supplier bound changes (``on_supplier_bound_dirty``); the
        #: buffer does not feed the corner, so buffer churn leaves it
        #: intact (``bound()`` folds the buffer top in per call).
        self._corner_cache: float | None = None

    # -- static structure -------------------------------------------------------

    def _compute_crossing_preds(self) -> dict[str, list[JoinPred]]:
        """For each probe-target name, the predicates crossing into it."""
        out: dict[str, list[JoinPred]] = {}
        for target in self._all_targets():
            preds = [
                p for p in self.expr.joins
                if (p.left_alias in target.aliases)
                != (p.right_alias in target.aliases)
            ]
            if not preds:
                raise ExecutionError(
                    f"{self.name}: target {target.name!r} has no join "
                    "predicate connecting it to the rest of the expression"
                )
            out[target.name] = preds
        return out

    def _all_targets(self) -> list[ProbeTarget]:
        return list(self._supplier_targets.values()) + self.probe_targets

    def _ensure_indexes(self) -> None:
        for target in self._supplier_targets.values():
            assert target.module is not None
            for pred in self._preds_for(target):
                for alias, attr in ((pred.left_alias, pred.left_attr),
                                    (pred.right_alias, pred.right_attr)):
                    if alias in target.aliases:
                        target.module.ensure_index(alias, attr)

    def _preds_for(self, target: ProbeTarget) -> list[JoinPred]:
        return self._crossing_preds[target.name]

    # -- bounds -----------------------------------------------------------------

    def _top_of(self, aliases: frozenset[str]) -> float:
        return sum(self.caps[a] for a in aliases)

    def on_supplier_bound_dirty(self) -> None:
        """A supplier's bound changed: drop the corner memo and pass the
        invalidation downstream.  Stops when already dirty -- consumers
        were notified the first time and have not recomputed since."""
        if self._corner_cache is None:
            return
        self._corner_cache = None
        notify_bound_dirty(self.consumers)

    def invalidate_bound(self) -> None:
        """Force a recompute on the next query, and tell consumers.

        Needed when this node re-attaches to suppliers it was detached
        from (revival): invalidations sent while detached were missed.
        """
        self._corner_cache = None
        notify_bound_dirty(self.consumers)

    def corner_bound(self) -> float:
        """HRJN corner bound on the intrinsic score of any join result
        not yet in the buffer: some stream contributes its next-unseen
        tuple (bounded by the stream bound) and everything else its cap.
        """
        cached = self._corner_cache
        if cached is not None:
            return cached
        best = -math.inf
        for idx, supplier in enumerate(self.suppliers):
            s_i = supplier.bound()
            if s_i == EXHAUSTED:
                continue
            value = s_i + self._tops_total - self._supplier_tops[idx]
            if value > best:
                best = value
        corner = -math.inf if best == -math.inf else best + self._probe_cap
        self._corner_cache = corner
        return corner

    def bound(self) -> float:
        """Bound on the intrinsic score of the next *released* tuple."""
        corner = self.corner_bound()
        if self._buffer:
            return max(corner, -self._buffer[0][0])
        return corner

    def preferred_supplier(self) -> Supplier | None:
        """The supplier whose next read drops this node's corner bound
        the most: the one attaining the corner maximum.  ``None`` when
        every supplier is exhausted."""
        best: Supplier | None = None
        best_value = -math.inf
        for idx, supplier in enumerate(self.suppliers):
            s_i = supplier.bound()
            if s_i == EXHAUSTED:
                continue
            value = s_i + self._tops_total - self._supplier_tops[idx]
            if value > best_value:
                best_value = value
                best = supplier
        return best

    @property
    def exhausted(self) -> bool:
        return self.bound() == -math.inf and not self._buffer

    # -- data flow -----------------------------------------------------------------

    def on_arrival(self, supplier: Supplier, tup: STuple) -> None:
        """Probe the other inputs with the arriving tuple; buffer results."""
        try:
            driving_idx = next(
                i for i, s in enumerate(self.suppliers) if s is supplier
            )
        except StopIteration:
            raise ExecutionError(
                f"{self.name}: arrival from unknown supplier {supplier.name!r}"
            ) from None
        self._arrivals += 1
        self.last_used_epoch = self._epoch_of()
        targets = [
            t for i, t in self._supplier_targets.items() if i != driving_idx
        ] + self.probe_targets
        order = self._probe_order(targets, frozenset(tup.aliases))
        partials = [tup]
        for target in order:
            if not partials:
                break
            partials = self._extend(partials, target)
        if partials:
            for result in partials:
                heapq.heappush(
                    self._buffer,
                    (-result.intrinsic, next(self._counter), result),
                )
            # The buffer top may have risen, which raises bound().
            notify_bound_dirty(self.consumers)

    def _probe_order(self, targets: list[ProbeTarget],
                     start_aliases: frozenset[str]) -> list[ProbeTarget]:
        """Connectivity-constrained greedy order by observed fanout.

        Re-derived per arrival from monitored selectivities -- this is
        the eddy-style runtime adaptivity: each driving input can end up
        with a different probe sequence.
        """
        remaining = list(targets)
        bound_aliases = set(start_aliases)
        order: list[ProbeTarget] = []
        while remaining:
            connected = [
                t for t in remaining
                if any(
                    (p.left_alias in bound_aliases
                     and p.right_alias in t.aliases)
                    or (p.right_alias in bound_aliases
                        and p.left_alias in t.aliases)
                    for p in self._preds_for(t)
                )
            ]
            if not connected:
                raise ExecutionError(
                    f"{self.name}: probe order stuck; remaining targets "
                    f"{[t.name for t in remaining]} are not connected to "
                    f"bound aliases {sorted(bound_aliases)}"
                )
            if self.adaptive:
                connected.sort(key=lambda t: (t.observed_fanout, t.name))
            else:
                connected.sort(key=lambda t: t.name)  # static order
            chosen = connected[0]
            order.append(chosen)
            bound_aliases.update(chosen.aliases)
            remaining.remove(chosen)
        return order

    def _extend(self, partials: list[STuple],
                target: ProbeTarget) -> list[STuple]:
        """Join every partial binding against one probe target."""
        grown: list[STuple] = []
        for partial in partials:
            applicable = [
                p for p in self._preds_for(target)
                if (p.left_alias in partial.aliases
                    and p.right_alias in target.aliases)
                or (p.right_alias in partial.aliases
                    and p.left_alias in target.aliases)
            ]
            if not applicable:
                raise ExecutionError(
                    f"{self.name}: no applicable predicate probing "
                    f"{target.name!r}"
                )
            first = applicable[0]
            if first.left_alias in target.aliases:
                t_alias, t_attr = first.left_alias, first.left_attr
                p_alias, p_attr = first.right_alias, first.right_attr
            else:
                t_alias, t_attr = first.right_alias, first.right_attr
                p_alias, p_attr = first.left_alias, first.left_attr
            value = partial.bindings[p_alias].values[p_attr]
            self.clock.advance(self.delays.cpu_probe)
            self.metrics.record_join_probe(self.delays.cpu_probe)
            candidates = target.lookup(t_alias, t_attr, value)
            target.probes += 1
            rest = applicable[1:]
            for candidate in candidates:
                ok = True
                for pred in rest:
                    if pred.left_alias in target.aliases:
                        c_alias, c_attr = pred.left_alias, pred.left_attr
                        o_alias, o_attr = pred.right_alias, pred.right_attr
                    else:
                        c_alias, c_attr = pred.right_alias, pred.right_attr
                        o_alias, o_attr = pred.left_alias, pred.left_attr
                    if candidate.bindings[c_alias].values[c_attr] \
                            != partial.bindings[o_alias].values[o_attr]:
                        ok = False
                        break
                if ok:
                    target.matches += 1
                    grown.append(partial.merge(candidate))
        return grown

    def seed_from_suppliers(self) -> int:
        """Materialize every join result derivable from the suppliers'
        *current* module contents straight into this node's module.

        This is Algorithm 2's recovery join applied at node-creation
        time: drive the replay of one supplier's linked list (we pick
        the smallest) and treat the other suppliers' hash tables as
        random-access inputs.  Results are inserted in nonincreasing
        intrinsic order so that module replays remain sorted streams.
        In-memory work only -- no network cost -- which is what makes
        state reuse nearly free.

        Returns the number of seeded results.  Newly created nodes with
        empty suppliers seed nothing; nodes whose *every* streaming
        supplier has history seed the full old-x-old cross-section.
        """
        moduled = [s for s in self.suppliers if s.module is not None]
        if len(moduled) != len(self.suppliers):
            return 0  # recovery-style nodes never seed
        if any(s.module.size == 0 for s in moduled):
            return 0  # every result needs one tuple from every stream
        driving = min(moduled, key=lambda s: (s.module.size, s.name))
        other_targets = [
            target for idx, target in self._supplier_targets.items()
            if self.suppliers[idx] is not driving
        ]
        results: list[STuple] = []
        for tup in driving.module.replay():
            partials = [tup]
            for target in self._probe_order(
                    other_targets + self.probe_targets,
                    frozenset(tup.aliases)):
                if not partials:
                    break
                partials = self._extend(partials, target)
            results.extend(partials)
        results.sort(key=lambda t: -t.intrinsic)
        epoch = self._epoch_of()
        for tup in results:
            self.module.insert(tup, epoch)
            self.clock.advance(self.delays.cpu_insert)
            self.metrics.record_insert(self.delays.cpu_insert)
            self.metrics.tuples_reused += 1
        return len(results)

    def clear_state(self) -> int:
        """Drop module contents and the unreleased buffer (eviction /
        detach support).  Returns tuples freed."""
        freed = self.module.clear() + len(self._buffer)
        self._buffer.clear()
        self._corner_cache = None
        notify_bound_dirty(self.consumers)
        return freed

    def release_ready(self) -> int:
        """Release buffered results whose score no future result can
        beat; returns the number released."""
        released = 0
        epsilon = 1e-9
        while self._buffer:
            corner = self.corner_bound()
            top_neg, _seq, tup = self._buffer[0]
            if -top_neg + epsilon < corner:
                break
            heapq.heappop(self._buffer)
            self.module.insert(tup, self._epoch_of())
            self.clock.advance(self.delays.cpu_insert)
            self.metrics.record_insert(self.delays.cpu_insert)
            self._released += 1
            released += 1
            notify_bound_dirty(self.consumers)
            for consumer in list(self.consumers):
                consumer.on_arrival(self, tup)
        return released

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    @property
    def released(self) -> int:
        return self._released

    def state_size(self) -> int:
        return self.module.size + len(self._buffer)

    def __repr__(self) -> str:
        return (f"MJoinNode({self.name!r}, suppliers="
                f"{[s.name for s in self.suppliers]}, "
                f"buffered={len(self._buffer)}, released={self._released})")
