"""Access modules: shared, epoch-partitioned join state.

Every streaming input (and every m-join's released output) owns one
:class:`AccessModule` -- the "state module" of the STeM eddy [24] the
paper builds on.  A module is:

* **indexed**: one hash index per (alias, attribute) pair any consumer
  may probe on, so an m-join can look up join partners in O(1);
* **insertion-ordered**: the paper threads a linked list through the
  hash table so state recovery can replay tuples "in the order they
  were received from the input stream" (Section 6.2) -- which is
  nonincreasing score order, exactly what recovery queries need;
* **epoch-partitioned**: each batch graft increments a logical
  timestamp; tuples are stored in their arrival epoch's partition so a
  recovery query ``CQ^e`` can restrict itself to tuples that arrived
  before epoch ``e`` and thereby avoid duplicating the live query's
  results (Algorithm 2).

Modules are *shared*: several m-joins (from different conjunctive
queries) probe the same module, which is how subexpression sharing
avoids duplicated state.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.common.errors import StateError
from repro.data.rows import STuple


class AccessModule:
    """Epoch-partitioned, insertion-ordered, multi-indexed tuple store."""

    def __init__(self, name: str, index_keys: tuple[tuple[str, str], ...] = ()
                 ) -> None:
        self.name = name
        #: (alias, attr) -> value -> list of (epoch, position, tuple)
        self._indexes: dict[tuple[str, str], dict[Any, list[STuple]]] = {
            key: {} for key in index_keys
        }
        #: epoch -> tuples in arrival order (the "linked list").
        self._partitions: dict[int, list[STuple]] = {}
        #: Global arrival order across partitions.
        self._arrival_log: list[tuple[int, STuple]] = []

    # -- schema of the module -------------------------------------------------

    @property
    def index_keys(self) -> tuple[tuple[str, str], ...]:
        return tuple(self._indexes)

    def ensure_index(self, alias: str, attr: str) -> None:
        """Add a hash index retroactively (new consumers may probe on
        attributes earlier consumers did not)."""
        key = (alias, attr)
        if key in self._indexes:
            return
        index: dict[Any, list[STuple]] = {}
        for _epoch, tup in self._arrival_log:
            value = tup.row(alias)[attr]
            index.setdefault(value, []).append(tup)
        self._indexes[key] = index

    # -- writes -----------------------------------------------------------------

    def insert(self, tup: STuple, epoch: int) -> None:
        """Store a tuple under ``epoch``; updates every index."""
        self._partitions.setdefault(epoch, []).append(tup)
        self._arrival_log.append((epoch, tup))
        for (alias, attr), index in self._indexes.items():
            value = tup.row(alias)[attr]
            index.setdefault(value, []).append(tup)

    # -- probes -----------------------------------------------------------------

    def probe(self, alias: str, attr: str, value: Any,
              before_epoch: int | None = None) -> list[STuple]:
        """Tuples whose ``alias.attr == value``.

        ``before_epoch`` restricts to partitions strictly earlier --
        the recovery-query view.  Restriction requires scanning the
        posting list, which is fine: recovery happens once per graft.
        """
        key = (alias, attr)
        if key not in self._indexes:
            raise StateError(
                f"module {self.name!r} has no index on {alias}.{attr}; "
                f"available: {sorted(self._indexes)}"
            )
        postings = self._indexes[key].get(value, [])
        if before_epoch is None:
            return list(postings)
        allowed = self._tuples_before(before_epoch)
        return [t for t in postings if t in allowed]

    def _tuples_before(self, epoch: int) -> set[STuple]:
        out: set[STuple] = set()
        for partition_epoch, tuples in self._partitions.items():
            if partition_epoch < epoch:
                out.update(tuples)
        return out

    # -- ordered replay -----------------------------------------------------------

    def replay(self, before_epoch: int | None = None) -> Iterator[STuple]:
        """Tuples in arrival order, optionally restricted to earlier
        epochs: the linked-list walk of Section 6.2."""
        for epoch, tup in self._arrival_log:
            if before_epoch is None or epoch < before_epoch:
                yield tup

    def replay_list(self, before_epoch: int | None = None) -> list[STuple]:
        return list(self.replay(before_epoch))

    # -- accounting -----------------------------------------------------------------

    @property
    def size(self) -> int:
        """Stored tuple count (the eviction unit of Section 6.3)."""
        return len(self._arrival_log)

    def partition_sizes(self) -> dict[int, int]:
        return {e: len(ts) for e, ts in self._partitions.items()}

    def has_tuples_before(self, epoch: int) -> bool:
        return any(e < epoch and ts for e, ts in self._partitions.items())

    def clear(self) -> int:
        """Drop all state; returns tuples freed (for eviction metrics)."""
        freed = self.size
        self._partitions.clear()
        self._arrival_log.clear()
        for index in self._indexes.values():
            index.clear()
        return freed

    def __repr__(self) -> str:
        return (f"AccessModule({self.name!r}, size={self.size}, "
                f"partitions={sorted(self._partitions)})")


class ModuleProbeView:
    """A random-access facade over a module's pre-epoch partitions.

    Recovery queries (Algorithm 2, lines 9-15) treat every non-driving
    streaming input as a random-access source "since tuples from J'^e
    are already indexed in a hash table".  Probes are free of network
    delay -- the state is local.
    """

    def __init__(self, module: AccessModule, before_epoch: int) -> None:
        self.module = module
        self.before_epoch = before_epoch

    def probe(self, alias: str, attr: str, value: Any) -> list[STuple]:
        return self.module.probe(alias, attr, value,
                                 before_epoch=self.before_epoch)

    def __repr__(self) -> str:
        return (f"ModuleProbeView({self.module.name!r}, "
                f"before={self.before_epoch})")
