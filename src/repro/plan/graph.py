"""The query plan graph: one ATC's worth of operators and state.

A :class:`PlanGraph` owns everything a single ATC coordinates (Figure 3
of the paper): the input units (streaming sources + shared state
modules), the m-join nodes, the shared random-access sources, and the
rank-merge operators -- plus the graph's virtual clock, metrics, and
epoch counter.  The ATC-CL configuration runs several plan graphs side
by side on parallel clocks; every other configuration schedules all
queries through the single middleware graph (they differ in sharing
scope, not in parallelism).

The graph also implements the *descent* the ATC uses to turn a
rank-merge's preferred stream into a base read: follow the
corner-bound-attaining supplier chain down to a readable input unit.
"""

from __future__ import annotations

import math
import random
from typing import Union

from repro.common.clock import VirtualClock
from repro.common.config import DelayModel, ExecutionConfig
from repro.common.errors import ExecutionError
from repro.common.rng import make_rng
from repro.data.database import Federation
from repro.data.sources import RandomAccessSource, StreamingSource
from repro.operators.nodes import InputUnit, MJoinNode, RecoveryUnit, Supplier
from repro.operators.rankmerge import RankMerge
from repro.plan.expressions import SPJ
from repro.obs.records import Metrics

AnySupplier = Union[InputUnit, MJoinNode, RecoveryUnit]


class PlanGraph:
    """Operators, state, clock, and epoch of one ATC."""

    def __init__(self, graph_id: str, federation: Federation,
                 config: ExecutionConfig) -> None:
        self.graph_id = graph_id
        self.federation = federation
        self.config = config
        self.clock = VirtualClock()
        self.metrics = Metrics()
        self.epoch = 0
        self.units: dict[str, InputUnit] = {}
        self.nodes: dict[str, MJoinNode] = {}
        self.recovery_units: dict[str, RecoveryUnit] = {}
        self.ra_sources: dict[tuple, RandomAccessSource] = {}
        self.rank_merges: dict[str, RankMerge] = {}
        self.detached: set[str] = set()
        self._rng = make_rng(config.seed, "graph", graph_id)

    # -- epochs ------------------------------------------------------------

    def next_epoch(self) -> int:
        """Increment the logical timestamp (one per graft, Section 6.2)."""
        self.epoch += 1
        return self.epoch

    def epoch_of(self) -> int:
        return self.epoch

    # -- construction helpers ------------------------------------------------

    def create_unit(self, unit_id: str, expr: SPJ) -> InputUnit:
        """Create (or return) the input unit streaming ``expr``."""
        existing = self.units.get(unit_id)
        if existing is not None:
            return existing
        site = self.federation.site_of_expression(expr)
        if site is None:
            raise ExecutionError(
                f"input {expr!r} spans sites; it cannot be a single "
                "streaming source"
            )
        source = StreamingSource(
            name=unit_id,
            expr=expr,
            database=self.federation.database(site),
            clock=self.clock,
            metrics=self.metrics,
            delays=self.config.delays,
            rng=self._source_rng(unit_id),
        )
        unit = InputUnit(unit_id, expr, source, self.clock, self.metrics,
                         self.config.delays)
        self.units[unit_id] = unit
        return unit

    def ra_source_for(self, relation: str, selections: tuple,
                      scope: str) -> RandomAccessSource:
        """Shared random-access source for ``relation`` (+ selections).

        Keyed by (relation, selections, scope): in ATC-CQ mode each CQ
        gets a private source, so probe caches are not shared -- the
        no-sharing baseline pays for every probe.
        """
        sel_key = tuple(sorted(
            (s.attr, s.op, repr(s.value)) for s in selections
        ))
        key = (relation, sel_key, scope)
        existing = self.ra_sources.get(key)
        if existing is not None:
            return existing
        database = self.federation.database_for(relation)
        source = RandomAccessSource(
            name=f"ra:{relation}:{scope}",
            relation=relation,
            database=database,
            clock=self.clock,
            metrics=self.metrics,
            delays=self.config.delays,
            rng=self._source_rng(f"ra:{relation}:{scope}"),
            selections=selections,
            use_cache=self.config.probe_caching,
        )
        self.ra_sources[key] = source
        return source

    def _source_rng(self, name: str) -> random.Random:
        return make_rng(self.config.seed, "delays", self.graph_id, name)

    # -- flow control -------------------------------------------------------------

    def release_all(self) -> int:
        """Run release passes over every m-join until fixpoint.

        Releases cascade: an upstream release becomes a downstream
        arrival, which may enable further releases.  The loop is
        bounded because every pass either releases buffered tuples
        (finite) or stops.
        """
        total = 0
        while True:
            released = 0
            for node in self.nodes.values():
                released += node.release_ready()
            total += released
            if released == 0:
                return total

    def descend_to_readable(self, supplier: Supplier) -> AnySupplier | None:
        """Follow preferred suppliers down to a readable base unit."""
        current = supplier
        hops = 0
        while True:
            hops += 1
            if hops > len(self.nodes) + len(self.units) + 2:
                raise ExecutionError(
                    f"{self.graph_id}: descent did not terminate at a "
                    f"readable unit (cycle in plan graph?)"
                )
            if isinstance(current, (InputUnit, RecoveryUnit)):
                return current if current.readable() else None
            if isinstance(current, MJoinNode):
                nxt = current.preferred_supplier()
                if nxt is None:
                    return None
                current = nxt
                continue
            raise ExecutionError(
                f"{self.graph_id}: cannot descend through "
                f"{type(current).__name__}"
            )

    # -- accounting -----------------------------------------------------------------

    def split_count(self) -> int:
        """Number of split operators: suppliers feeding > 1 consumer."""
        count = 0
        for supplier in list(self.units.values()) + list(self.nodes.values()):
            if len(supplier.consumers) > 1:
                count += 1
        return count

    def state_size(self) -> int:
        """Total stored tuples (modules + buffers + probe caches)."""
        total = 0
        for unit in self.units.values():
            total += unit.module.size
        for node in self.nodes.values():
            total += node.state_size()
        for source in self.ra_sources.values():
            total += source.cache_size
        return total

    def incomplete_rank_merges(self) -> list[RankMerge]:
        return [rm for rm in self.rank_merges.values() if not rm.complete]

    def frontier_summary(self) -> dict[str, float]:
        """Per-UQ emission frontier, for debugging and monitoring."""
        out = {}
        for uq_id, rm in self.rank_merges.items():
            frontier = rm.frontier()
            out[uq_id] = frontier if frontier != -math.inf else float("nan")
        return out

    def __repr__(self) -> str:
        return (f"PlanGraph({self.graph_id!r}, units={len(self.units)}, "
                f"nodes={len(self.nodes)}, rms={len(self.rank_merges)}, "
                f"epoch={self.epoch}, t={self.clock.now:.3f}s)")
