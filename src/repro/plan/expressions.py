"""Logical select-project-join expressions.

Conjunctive queries (candidate networks) and every shared subexpression
the optimizer reasons about are instances of :class:`SPJ`: a set of
relation *atoms* (alias -> relation), equality *join predicates* along
schema-graph edges, and *selections* (the keyword-match conditions,
e.g. ``T.name = 'plasma membrane'``).

Two facilities matter for the paper's algorithms:

* **Canonicalization** (:meth:`SPJ.canonical_key`): subexpression sharing
  across conjunctive queries requires recognising that two SPJ fragments
  are *the same expression* even when their atoms carry different
  aliases.  We canonicalize with a Weisfeiler-Leman style relabeling,
  which fully distinguishes the tree-shaped join graphs produced by
  candidate-network generation.

* **Connected subexpression enumeration**
  (:meth:`SPJ.connected_subexpressions`): the AND-OR candidate
  enumeration of Section 5.1.2 and the "do not consider overlapping
  pushed-down subexpressions" heuristic both iterate over the connected
  induced fragments of each query.
"""

from __future__ import annotations

import hashlib
import itertools
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass
from functools import cached_property

from repro.common.errors import QueryError

#: Selection operators understood by the simulated sites.
SELECTION_OPS = ("eq", "contains", "ge", "le")


@dataclass(frozen=True, order=True)
class Atom:
    """One occurrence of a relation in an expression.

    ``alias`` is unique within the expression; ``relation`` names the
    schema relation.  The same relation may appear under several
    aliases (self-joins through synonym tables, etc.).
    """

    alias: str
    relation: str


@dataclass(frozen=True, order=True)
class Selection:
    """A predicate ``alias.attr <op> value`` applied at one atom."""

    alias: str
    attr: str
    op: str
    value: object

    def __post_init__(self) -> None:
        if self.op not in SELECTION_OPS:
            raise QueryError(
                f"unknown selection operator {self.op!r}; "
                f"expected one of {SELECTION_OPS}"
            )

    def matches(self, row_values: Mapping[str, object]) -> bool:
        """Evaluate this predicate against a raw row's values."""
        actual = row_values.get(self.attr)
        if actual is None:
            return False
        if self.op == "eq":
            return actual == self.value
        if self.op == "contains":
            return str(self.value) in str(actual)
        if self.op == "ge":
            return actual >= self.value  # type: ignore[operator]
        return actual <= self.value  # type: ignore[operator]


@dataclass(frozen=True, order=True)
class JoinPred:
    """An equality join ``left_alias.left_attr = right_alias.right_attr``.

    Construct via :meth:`normalized` so that the two sides are stored in
    a deterministic order and structurally-equal predicates compare
    equal.
    """

    left_alias: str
    left_attr: str
    right_alias: str
    right_attr: str

    @classmethod
    def normalized(cls, alias_a: str, attr_a: str,
                   alias_b: str, attr_b: str) -> "JoinPred":
        if alias_a == alias_b:
            raise QueryError(
                f"join predicate must link two distinct atoms, got "
                f"{alias_a}.{attr_a} = {alias_b}.{attr_b}"
            )
        if (alias_a, attr_a) <= (alias_b, attr_b):
            return cls(alias_a, attr_a, alias_b, attr_b)
        return cls(alias_b, attr_b, alias_a, attr_a)

    def touches(self, alias: str) -> bool:
        return alias in (self.left_alias, self.right_alias)

    def side_for(self, alias: str) -> tuple[str, str]:
        """Return ``(my_attr, other_alias)`` oriented from ``alias``."""
        if alias == self.left_alias:
            return self.left_attr, self.right_alias
        if alias == self.right_alias:
            return self.right_attr, self.left_alias
        raise QueryError(f"{alias!r} is not part of join {self}")

    def other(self, alias: str) -> str:
        attr_unused, other_alias = self.side_for(alias)
        return other_alias


class SPJ:
    """An immutable select-project-join expression.

    Instances are value objects: equality and hashing are structural
    (over atoms, joins, and selections, *not* canonicalized -- use
    :meth:`canonical_key` to compare modulo alias renaming).
    """

    __slots__ = ("atoms", "joins", "selections", "_hash", "__dict__")

    def __init__(self, atoms: Iterable[Atom],
                 joins: Iterable[JoinPred] = (),
                 selections: Iterable[Selection] = ()) -> None:
        atoms = tuple(sorted(atoms))
        if not atoms:
            raise QueryError("an SPJ expression needs at least one atom")
        aliases = [a.alias for a in atoms]
        if len(set(aliases)) != len(aliases):
            raise QueryError(f"duplicate aliases in expression: {aliases}")
        alias_set = set(aliases)
        joins = frozenset(joins)
        selections = frozenset(selections)
        for pred in joins:
            for alias in (pred.left_alias, pred.right_alias):
                if alias not in alias_set:
                    raise QueryError(
                        f"join {pred} references unknown alias {alias!r}"
                    )
        for sel in selections:
            if sel.alias not in alias_set:
                raise QueryError(
                    f"selection {sel} references unknown alias {sel.alias!r}"
                )
        object.__setattr__(self, "atoms", atoms)
        object.__setattr__(self, "joins", joins)
        object.__setattr__(self, "selections", selections)
        # SPJ objects are used as dict keys throughout the optimizer;
        # the hash over three frozen collections is expensive enough to
        # show up in profiles, so compute it once.
        object.__setattr__(self, "_hash", hash((atoms, joins, selections)))

    # -- basic structure ------------------------------------------------

    @cached_property
    def aliases(self) -> tuple[str, ...]:
        return tuple(a.alias for a in self.atoms)

    @cached_property
    def alias_to_relation(self) -> dict[str, str]:
        return {a.alias: a.relation for a in self.atoms}

    @cached_property
    def relations(self) -> tuple[str, ...]:
        """Sorted multiset of relation names used by this expression."""
        return tuple(sorted(a.relation for a in self.atoms))

    @property
    def size(self) -> int:
        return len(self.atoms)

    def selections_on(self, alias: str) -> tuple[Selection, ...]:
        return tuple(sorted(s for s in self.selections if s.alias == alias))

    def joins_on(self, alias: str) -> tuple[JoinPred, ...]:
        return tuple(sorted(j for j in self.joins if j.touches(alias)))

    @cached_property
    def adjacency(self) -> dict[str, tuple[str, ...]]:
        """alias -> sorted tuple of join-neighbour aliases."""
        neighbours: dict[str, set[str]] = {a: set() for a in self.aliases}
        for pred in self.joins:
            neighbours[pred.left_alias].add(pred.right_alias)
            neighbours[pred.right_alias].add(pred.left_alias)
        return {a: tuple(sorted(ns)) for a, ns in neighbours.items()}

    def is_connected(self) -> bool:
        """Whether the join graph links every atom (single atoms count)."""
        seen = {self.aliases[0]}
        frontier = [self.aliases[0]]
        while frontier:
            current = frontier.pop()
            for neighbour in self.adjacency[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return len(seen) == len(self.aliases)

    # -- derived expressions ---------------------------------------------

    def induced(self, aliases: Iterable[str]) -> "SPJ":
        """The sub-expression induced by a subset of aliases.

        Keeps every join and selection whose aliases all fall inside the
        subset.  Memoized per instance: the optimizer's plan search and
        factorization induce the same fragments of the same (interned,
        shared) expressions thousands of times per batch, and the
        result is a pure function of the alias subset.
        """
        keep = frozenset(aliases)
        cache = self.__dict__.setdefault("_induced_cache", {})
        cached = cache.get(keep)
        if cached is not None:
            return cached
        unknown = keep - set(self.aliases)
        if unknown:
            raise QueryError(f"cannot induce on unknown aliases {sorted(unknown)}")
        atoms = [a for a in self.atoms if a.alias in keep]
        joins = [j for j in self.joins
                 if j.left_alias in keep and j.right_alias in keep]
        selections = [s for s in self.selections if s.alias in keep]
        result = self if keep == frozenset(self.aliases) \
            else SPJ(atoms, joins, selections)
        cache[keep] = result
        return result

    def connected_subexpressions(self, min_size: int = 1,
                                 max_size: int | None = None
                                 ) -> Iterator["SPJ"]:
        """Yield every connected induced subexpression, smallest first.

        Enumeration grows connected alias sets breadth-first and
        deduplicates by frozenset, so each subset is yielded exactly
        once.  ``max_size`` defaults to the full expression size.  The
        enumerated fragment list is memoized per (min, max) window --
        the AND-OR construction re-enumerates the same interned query
        expressions every batch.
        """
        if max_size is None:
            max_size = self.size
        memo = self.__dict__.setdefault("_fragment_cache", {})
        cached = memo.get((min_size, max_size))
        if cached is not None:
            yield from cached
            return
        fragments = list(self._enumerate_connected(min_size, max_size))
        memo[(min_size, max_size)] = tuple(fragments)
        yield from fragments

    def _enumerate_connected(self, min_size: int,
                             max_size: int) -> Iterator["SPJ"]:
        seen: set[frozenset[str]] = set()
        frontier: list[frozenset[str]] = []
        for alias in self.aliases:
            singleton = frozenset((alias,))
            seen.add(singleton)
            frontier.append(singleton)
        by_size: dict[int, list[frozenset[str]]] = {1: list(frontier)}
        size = 1
        while size < max_size:
            next_level: list[frozenset[str]] = []
            for subset in by_size.get(size, ()):
                reachable: set[str] = set()
                for alias in subset:
                    reachable.update(self.adjacency[alias])
                for alias in reachable - subset:
                    grown = subset | {alias}
                    if grown not in seen:
                        seen.add(grown)
                        next_level.append(grown)
            if not next_level:
                break
            by_size[size + 1] = next_level
            size += 1
        for size in range(min_size, max_size + 1):
            for subset in sorted(by_size.get(size, ()), key=sorted):
                yield self.induced(subset)

    def renamed(self, mapping: Mapping[str, str]) -> "SPJ":
        """The same expression with aliases renamed through ``mapping``.

        Aliases absent from the mapping keep their names; the mapping
        must not collapse two aliases into one.  Renaming never changes
        :attr:`canonical_key` -- that is the invariant the plan
        repository's template signatures rest on.
        """
        new_names = [mapping.get(a, a) for a in self.aliases]
        if len(set(new_names)) != len(new_names):
            raise QueryError(f"renaming {dict(mapping)} collapses aliases")
        atoms = [Atom(mapping.get(a.alias, a.alias), a.relation)
                 for a in self.atoms]
        joins = [
            JoinPred.normalized(
                mapping.get(p.left_alias, p.left_alias), p.left_attr,
                mapping.get(p.right_alias, p.right_alias), p.right_attr)
            for p in self.joins
        ]
        selections = [
            Selection(mapping.get(s.alias, s.alias), s.attr, s.op, s.value)
            for s in self.selections
        ]
        return SPJ(atoms, joins, selections)

    def overlaps(self, other: "SPJ") -> bool:
        """Whether the two expressions share any alias."""
        return bool(set(self.aliases) & set(other.aliases))

    def contains_aliases(self, other: "SPJ") -> bool:
        """Whether ``other``'s alias set is a subset of ours with the
        same induced structure (used for within-query subexpression
        tests where aliases are drawn from the same namespace)."""
        keep = set(other.aliases)
        if not keep <= set(self.aliases):
            return False
        return self.induced(keep) == other

    # -- canonicalization --------------------------------------------------

    @cached_property
    def canonical_renaming(self) -> dict[str, str]:
        """Map each alias to its canonical name (``q0``, ``q1``, ...).

        Computed by iterated Weisfeiler-Leman refinement: each atom's
        signature starts as (relation, its selections) and repeatedly
        absorbs the multiset of (edge attribute pair, neighbour
        signature).  Tree-shaped join graphs -- which is what candidate
        networks produce -- are fully distinguished after ``size``
        rounds.  Two equivalent expressions get renamings that compose
        into an isomorphism between them (see :func:`alias_isomorphism`).
        """
        sig: dict[str, str] = {}
        for atom in self.atoms:
            sels = tuple(
                (s.attr, s.op, repr(s.value))
                for s in self.selections_on(atom.alias)
            )
            sig[atom.alias] = _digest((atom.relation, sels))
        incident: dict[str, list[JoinPred]] = {a: [] for a in self.aliases}
        for pred in self.joins:
            incident[pred.left_alias].append(pred)
            incident[pred.right_alias].append(pred)
        for _round in range(max(2, self.size)):
            new_sig: dict[str, str] = {}
            for alias in self.aliases:
                neighbour_part = sorted(
                    (pred.side_for(alias)[0],
                     _attr_of(pred, pred.other(alias)),
                     sig[pred.other(alias)])
                    for pred in incident[alias]
                )
                new_sig[alias] = _digest((sig[alias], tuple(neighbour_part)))
            sig = new_sig
        order = sorted(self.aliases, key=lambda a: (sig[a], a))
        return {alias: f"q{i}" for i, alias in enumerate(order)}

    @cached_property
    def canonical_key(self) -> str:
        """A string identifying this expression modulo alias renaming."""
        rename = self.canonical_renaming
        atoms = tuple(sorted(
            (rename[a.alias], a.relation) for a in self.atoms
        ))
        joins = tuple(sorted(
            tuple(sorted(
                ((rename[p.left_alias], p.left_attr),
                 (rename[p.right_alias], p.right_attr))
            ))
            for p in self.joins
        ))
        selections = tuple(sorted(
            (rename[s.alias], s.attr, s.op, repr(s.value))
            for s in self.selections
        ))
        return _digest((atoms, joins, selections))

    def is_equivalent(self, other: "SPJ") -> bool:
        """Structural equality modulo alias renaming."""
        return self.canonical_key == other.canonical_key

    def is_subexpression_of(self, container: "SPJ") -> bool:
        """Whether this expression occurs (modulo renaming) inside
        ``container`` as a connected induced fragment."""
        if self.size > container.size:
            return False
        target = self.canonical_key
        for candidate in container.connected_subexpressions(
                min_size=self.size, max_size=self.size):
            if candidate.canonical_key == target:
                return True
        return False

    # -- value semantics --------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SPJ):
            return NotImplemented
        return (self.atoms == other.atoms and self.joins == other.joins
                and self.selections == other.selections)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        parts = [f"{a.alias}:{a.relation}" for a in self.atoms]
        if self.selections:
            parts.append(
                "sel=" + ",".join(
                    f"{s.alias}.{s.attr}{s.op}{s.value!r}"
                    for s in sorted(self.selections))
            )
        return f"SPJ({' '.join(parts)})"

    def describe(self) -> str:
        """A human-readable rendering, e.g. ``s(T) |X| G2G |X| GI``."""
        names = []
        for atom in self.atoms:
            if self.selections_on(atom.alias):
                names.append(f"s({atom.relation})")
            else:
                names.append(atom.relation)
        return " |X| ".join(names)


def _attr_of(pred: JoinPred, alias: str) -> str:
    attr, _other = pred.side_for(alias)
    return attr


def canonical_digest(payload: object, digest_size: int = 10) -> str:
    """The repo-wide canonical-hash scheme: blake2s over ``repr``.

    Shared so that every structural digest (expression canonical keys,
    CQ template signatures) changes in one place if the scheme ever
    needs to.
    """
    return hashlib.blake2s(repr(payload).encode(),
                           digest_size=digest_size).hexdigest()


def _digest(payload: object) -> str:
    return canonical_digest(payload)


def make_chain(relations: list[tuple[str, str, str, str]],
               selections: Iterable[Selection] = ()) -> SPJ:
    """Convenience: build a chain query R0 -a0=b1- R1 -a1=b2- R2 ...

    ``relations`` lists ``(relation, alias, join_attr_to_prev,
    prev_join_attr)`` quadruples; the first entry's join attributes are
    ignored.  Used heavily by tests and examples.
    """
    atoms = []
    joins = []
    prev_alias: str | None = None
    for relation, alias, attr_to_prev, prev_attr in relations:
        atoms.append(Atom(alias, relation))
        if prev_alias is not None:
            joins.append(JoinPred.normalized(
                prev_alias, prev_attr, alias, attr_to_prev))
        prev_alias = alias
    return SPJ(atoms, joins, selections)


def union_of(parts: Iterable[SPJ], extra_joins: Iterable[JoinPred] = ()) -> SPJ:
    """Combine disjoint-alias fragments plus bridging joins into one SPJ."""
    atoms: list[Atom] = []
    joins: list[JoinPred] = []
    selections: list[Selection] = []
    for part in parts:
        atoms.extend(part.atoms)
        joins.extend(part.joins)
        selections.extend(part.selections)
    joins.extend(extra_joins)
    return SPJ(atoms, joins, selections)


def alias_isomorphism(source: SPJ, target: SPJ) -> dict[str, str]:
    """An alias mapping carrying ``source`` onto the equivalent ``target``.

    Both expressions must have the same canonical key; the mapping
    composes ``source``'s canonical renaming with the inverse of
    ``target``'s.  Used when a shared input expression's output tuples
    must be re-labelled with a consuming query's own aliases.
    """
    if source.canonical_key != target.canonical_key:
        raise QueryError(
            f"no isomorphism: {source!r} and {target!r} are not equivalent"
        )
    inverse_target = {
        canon: alias for alias, canon in target.canonical_renaming.items()
    }
    return {
        alias: inverse_target[canon]
        for alias, canon in source.canonical_renaming.items()
    }


def cross_subexpression_pairs(left: SPJ, right: SPJ
                              ) -> Iterator[tuple[SPJ, SPJ]]:
    """Yield pairs of equivalent connected fragments, one from each query.

    Used by tests and by the optimizer's sharing diagnostics; pairs are
    produced smallest-first.
    """
    right_by_key: dict[str, list[SPJ]] = {}
    for fragment in right.connected_subexpressions():
        right_by_key.setdefault(fragment.canonical_key, []).append(fragment)
    for fragment in left.connected_subexpressions():
        for twin in right_by_key.get(fragment.canonical_key, ()):
            yield fragment, twin
