"""AND-OR graph: the multi-query optimizer's memoization structure.

Section 5.1.2: "we employ a memoization structure called an AND-OR
graph, commonly used in multi-query optimization [26].  The AND-OR
representation of subexpressions is a directed acyclic graph that
consists of alternating levels of two types of nodes: 'OR' nodes that
encode equivalent subexpressions, and 'AND' nodes that encode selection
and join operations."

Here an :class:`OrNode` is one equivalence class of subexpressions
(keyed by the expression value -- aliases are shared across queries in
this pipeline, so value equality is equivalence), and each
:class:`AndNode` under it is one way of building it: joining two
smaller OR nodes, or scanning a base relation (with its selections).
The optimizer enumerates the graph over every connected fragment of
every query in the batch, then reads candidate inputs off the OR nodes.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.plan.expressions import SPJ

if TYPE_CHECKING:  # avoid a circular import; only needed for typing
    from repro.keyword.queries import ConjunctiveQuery


@dataclass(frozen=True)
class AndNode:
    """One way to construct an OR node's expression.

    ``kind`` is ``"scan"`` (base relation + selections) or ``"join"``
    (combine the two child OR nodes; the crossing predicates are
    implied by the parent expression).
    """

    kind: str
    children: tuple[SPJ, ...]

    def __repr__(self) -> str:
        if self.kind == "scan":
            return "And(scan)"
        return f"And(join {' + '.join(c.describe() for c in self.children)})"


@dataclass
class OrNode:
    """An equivalence class of subexpressions across the query batch."""

    expr: SPJ
    alternatives: list[AndNode] = field(default_factory=list)
    queries: set[str] = field(default_factory=set)

    @property
    def size(self) -> int:
        return self.expr.size

    def __repr__(self) -> str:
        return (f"Or({self.expr.describe()}, alts={len(self.alternatives)}, "
                f"queries={sorted(self.queries)})")


class AndOrGraph:
    """The memo over every connected fragment of a batch of queries."""

    def __init__(self, max_fragment_size: int = 4) -> None:
        self.max_fragment_size = max_fragment_size
        self._nodes: dict[SPJ, OrNode] = {}

    # -- construction ----------------------------------------------------------

    def add_queries(self, queries: Iterable["ConjunctiveQuery"]) -> None:
        """Enumerate all fragments of the given queries into the memo."""
        for cq in queries:
            limit = min(self.max_fragment_size, cq.expr.size)
            for fragment in cq.expr.connected_subexpressions(
                    min_size=1, max_size=limit):
                node = self._nodes.get(fragment)
                if node is None:
                    node = OrNode(fragment)
                    self._nodes[fragment] = node
                    self._expand_alternatives(node)
                node.queries.add(cq.cq_id)

    def _expand_alternatives(self, node: OrNode) -> None:
        """Fill in the AND alternatives for one OR node."""
        expr = node.expr
        if expr.size == 1:
            node.alternatives.append(AndNode("scan", (expr,)))
            return
        seen: set[frozenset[str]] = set()
        aliases = list(expr.aliases)
        # Every connected bipartition (A, B) of the fragment yields a
        # join alternative.  Enumerate connected subsets A containing
        # the first alias to avoid the (A, B)/(B, A) double count.
        anchor = aliases[0]
        for left_aliases in self._connected_subsets_containing(expr, anchor):
            if len(left_aliases) == expr.size:
                continue
            right_aliases = frozenset(aliases) - left_aliases
            left = expr.induced(left_aliases)
            right_expr_aliases = frozenset(right_aliases)
            if right_expr_aliases in seen:
                continue
            seen.add(right_expr_aliases)
            right = expr.induced(right_aliases)
            if not right.is_connected():
                continue
            crossing = [
                p for p in expr.joins
                if (p.left_alias in left_aliases)
                != (p.right_alias in left_aliases)
            ]
            if not crossing:
                continue
            node.alternatives.append(AndNode("join", (left, right)))

    def _connected_subsets_containing(self, expr: SPJ, anchor: str
                                      ) -> list[frozenset[str]]:
        found: set[frozenset[str]] = {frozenset((anchor,))}
        frontier = [frozenset((anchor,))]
        while frontier:
            subset = frontier.pop()
            reachable: set[str] = set()
            for alias in subset:
                reachable.update(expr.adjacency[alias])
            for alias in reachable - subset:
                grown = subset | {alias}
                if grown not in found:
                    found.add(grown)
                    frontier.append(grown)
        return sorted(found, key=lambda s: (len(s), sorted(s)))

    # -- queries over the memo ----------------------------------------------------

    def node(self, expr: SPJ) -> OrNode | None:
        return self._nodes.get(expr)

    @property
    def nodes(self) -> tuple[OrNode, ...]:
        return tuple(self._nodes.values())

    def shared_nodes(self, min_queries: int = 2) -> list[OrNode]:
        """OR nodes used by at least ``min_queries`` distinct queries --
        the raw material for push-down candidates."""
        return [n for n in self._nodes.values()
                if len(n.queries) >= min_queries]

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return f"AndOrGraph({len(self._nodes)} OR nodes)"
