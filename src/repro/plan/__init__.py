"""Logical expressions, AND-OR memo, and the physical plan graph.

Only the dependency-free expression layer is imported eagerly;
``PlanGraph`` and ``AndOrGraph`` are loaded lazily because they depend
on the data and operator layers, which themselves import
``repro.plan.expressions``.
"""

from typing import Any

from repro.plan.expressions import (
    SELECTION_OPS,
    SPJ,
    Atom,
    JoinPred,
    Selection,
    alias_isomorphism,
    cross_subexpression_pairs,
    make_chain,
    union_of,
)

__all__ = [
    "AndNode",
    "AndOrGraph",
    "Atom",
    "JoinPred",
    "OrNode",
    "PlanGraph",
    "SELECTION_OPS",
    "SPJ",
    "Selection",
    "alias_isomorphism",
    "cross_subexpression_pairs",
    "make_chain",
    "union_of",
]

_LAZY = {
    "PlanGraph": ("repro.plan.graph", "PlanGraph"),
    "AndOrGraph": ("repro.plan.andor", "AndOrGraph"),
    "AndNode": ("repro.plan.andor", "AndNode"),
    "OrNode": ("repro.plan.andor", "OrNode"),
}


def __getattr__(name: str) -> Any:
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target[0])
    value = getattr(module, target[1])
    globals()[name] = value
    return value
