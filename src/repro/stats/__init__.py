"""Metrics collection for the experiment harness."""

from repro.obs.records import Metrics, OptimizerRecord, UQRecord

__all__ = ["Metrics", "OptimizerRecord", "UQRecord"]
