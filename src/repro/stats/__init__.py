"""Metrics collection for the experiment harness."""

from repro.stats.metrics import Metrics, OptimizerRecord, UQRecord

__all__ = ["Metrics", "OptimizerRecord", "UQRecord"]
