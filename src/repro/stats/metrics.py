"""Deprecated shim: the metrics records moved to ``repro.obs.records``.

``repro.stats.metrics`` remains importable for one release so existing
imports keep working; new code should import :class:`Metrics`,
:class:`UQRecord`, and :class:`OptimizerRecord` from ``repro.obs`` (or
``repro.obs.records``).
"""

from __future__ import annotations

import warnings

from repro.obs.records import Metrics, OptimizerRecord, UQRecord

__all__ = ["Metrics", "OptimizerRecord", "UQRecord"]

warnings.warn(
    "repro.stats.metrics is deprecated; import Metrics, UQRecord, and "
    "OptimizerRecord from repro.obs instead",
    DeprecationWarning, stacklevel=2)
