"""The paper's Figure 1 running-example schema, verbatim.

Ten relations drawn from real bioinformatics databases, spread over the
sites named in Example 1, bridged by record-link tables:

* ``UP``  (UniProt protein entries)         -- site ``uniprot``
* ``TP``  (TblProtein)                      -- site ``prosite``
* ``E``   (InterPro Entry)                  -- site ``interpro``
* ``E2M`` (Entry2Meth link)                 -- site ``interpro``
* ``I2G`` (InterPro2GO link)                -- site ``interpro``
* ``T``   (GeneOntology Term)               -- site ``geneontology``
* ``TS``  (Term_Syn synonym link)           -- site ``geneontology``
* ``G2G`` (Gene2GO link)                    -- site ``geneontology``
* ``GI``  (NCBI GeneInfo)                   -- site ``ncbi``
* ``RL``  (RecordLink between UP and TP)    -- site ``uniprot``

The join edges mirror Figure 1; conjunctive queries CQ1..CQ6 from
Tables 1-3 of the paper are expressible over this schema and are used
throughout the unit tests and the ``query_refinement`` example.
"""

from __future__ import annotations

from repro.data.database import Federation
from repro.data.generator import SyntheticDataGenerator
from repro.data.schema import Attribute, Relation, Schema, SchemaEdge


def figure1_schema() -> Schema:
    """Build the Figure 1 schema graph."""
    relations = [
        Relation("UP", (
            Attribute("ac", is_key=True),
            Attribute("nam", is_text=True),
            Attribute("relevance", is_score=True),
        ), site="uniprot", node_cost=0.2),
        Relation("TP", (
            Attribute("id", is_key=True),
            Attribute("prot", is_text=True),
            Attribute("relevance", is_score=True),
        ), site="prosite", node_cost=0.4),
        Relation("E", (
            Attribute("ent", is_key=True),
            Attribute("name", is_text=True),
        ), site="interpro", node_cost=0.3),
        Relation("E2M", (
            Attribute("ent", is_key=True),
            Attribute("meth_id", is_key=True),
        ), site="interpro", node_cost=0.5),
        Relation("I2G", (
            Attribute("ent", is_key=True),
            Attribute("gid", is_key=True),
        ), site="interpro", node_cost=0.5),
        Relation("T", (
            Attribute("gid", is_key=True),
            Attribute("name", is_text=True),
            Attribute("score", is_score=True),
        ), site="geneontology", node_cost=0.2),
        Relation("TS", (
            Attribute("gid1", is_key=True),
            Attribute("gid2", is_key=True),
            Attribute("score", is_score=True),
        ), site="geneontology", node_cost=0.6),
        Relation("G2G", (
            Attribute("gid", is_key=True),
            Attribute("giId", is_key=True),
        ), site="geneontology", node_cost=0.5),
        Relation("GI", (
            Attribute("giId", is_key=True),
            Attribute("gene", is_text=True),
            Attribute("relevance", is_score=True),
        ), site="ncbi", node_cost=0.2),
        Relation("RL", (
            Attribute("ac", is_key=True),
            Attribute("ent", is_key=True),
            Attribute("score", is_score=True),
        ), site="uniprot", node_cost=0.6),
    ]
    edges = [
        SchemaEdge("UP", "ac", "RL", "ac", cost=0.7, kind="link"),
        SchemaEdge("RL", "ent", "E", "ent", cost=0.7, kind="link"),
        SchemaEdge("RL", "ent", "I2G", "ent", cost=0.8, kind="link"),
        SchemaEdge("TP", "id", "E2M", "meth_id", cost=0.6, kind="fk"),
        SchemaEdge("E2M", "ent", "E", "ent", cost=0.5, kind="fk"),
        SchemaEdge("E2M", "ent", "I2G", "ent", cost=0.6, kind="fk"),
        SchemaEdge("I2G", "gid", "T", "gid", cost=0.4, kind="fk"),
        SchemaEdge("T", "gid", "TS", "gid1", cost=0.5, kind="syn"),
        SchemaEdge("TS", "gid2", "G2G", "gid", cost=0.5, kind="syn"),
        SchemaEdge("T", "gid", "G2G", "gid", cost=0.4, kind="fk"),
        SchemaEdge("G2G", "giId", "GI", "giId", cost=0.4, kind="fk"),
    ]
    return Schema(relations, edges)


#: Cardinalities giving a small-but-joinable instance for tests/examples.
DEFAULT_CARDINALITIES: dict[str, int] = {
    "UP": 300, "TP": 250, "E": 200, "E2M": 400, "I2G": 400,
    "T": 300, "TS": 350, "G2G": 450, "GI": 300, "RL": 350,
}


def figure1_federation(seed: int = 7,
                       cardinalities: dict[str, int] | None = None,
                       domain_factor: float = 0.25) -> Federation:
    """A populated federation over the Figure 1 schema.

    ``domain_factor`` is deliberately small so join chains like CQ1's
    seven-way path actually produce results at these cardinalities.
    """
    schema = figure1_schema()
    federation = Federation(schema)
    generator = SyntheticDataGenerator(schema, seed=seed,
                                       domain_factor=domain_factor)
    generator.populate(federation,
                       cardinalities or dict(DEFAULT_CARDINALITIES))
    return federation
