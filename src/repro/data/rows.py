"""Tuple representations.

Two levels exist:

* :class:`Row` -- a base tuple as stored at a site: relation name, a
  site-local tuple id, and the attribute values.

* :class:`STuple` -- a *scored* tuple flowing through the query plan
  graph: an immutable set of bindings (alias -> Row) together with each
  atom's intrinsic score contribution.  Joins merge STuples; the
  rank-merge operator maps an STuple's contributions through a user
  query's score function to obtain its final score.

STuples hash and compare by provenance (the set of (alias, relation,
tid) triples), which is what duplicate elimination during state
recovery (Section 6.2) relies on.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from functools import cached_property
from typing import Any

from repro.common.errors import DataError


@dataclass(frozen=True)
class Row:
    """One base tuple stored at a site."""

    relation: str
    tid: int
    values: Mapping[str, Any]

    def __getitem__(self, attr: str) -> Any:
        try:
            return self.values[attr]
        except KeyError:
            raise DataError(
                f"row {self.relation}#{self.tid} has no attribute {attr!r}"
            ) from None

    def get(self, attr: str, default: Any = None) -> Any:
        return self.values.get(attr, default)

    def __hash__(self) -> int:
        return hash((self.relation, self.tid))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return self.relation == other.relation and self.tid == other.tid

    def __repr__(self) -> str:
        return f"Row({self.relation}#{self.tid})"


class STuple:
    """A scored composite tuple: bindings from aliases to base rows.

    ``contribs`` maps each alias to that atom's intrinsic score
    contribution (the sum of its score-attribute values; zero for
    score-less relations).  The *intrinsic* score -- the sum of all
    contributions -- is the sort key every source and operator uses, as
    all supported user score functions are monotone transforms of it
    (see :mod:`repro.scoring`).
    """

    __slots__ = ("bindings", "contribs", "_provenance", "_intrinsic",
                 "_aliases")

    def __init__(self, bindings: Mapping[str, Row],
                 contribs: Mapping[str, float]) -> None:
        if not bindings:
            raise DataError("an STuple needs at least one binding")
        if set(bindings) != set(contribs):
            raise DataError(
                f"bindings {sorted(bindings)} and contributions "
                f"{sorted(contribs)} must cover the same aliases"
            )
        self.bindings: dict[str, Row] = dict(bindings)
        self.contribs: dict[str, float] = dict(contribs)
        self._provenance: frozenset[tuple[str, str, int]] = frozenset(
            (alias, row.relation, row.tid)
            for alias, row in self.bindings.items()
        )
        self._intrinsic: float = sum(self.contribs.values())
        self._aliases: frozenset[str] | None = None

    @classmethod
    def _from_parts(cls, bindings: dict[str, Row],
                    contribs: dict[str, float],
                    provenance: frozenset) -> "STuple":
        """Trusted-input constructor for the join hot paths.

        Callers own the dicts they pass (no copying) and have already
        guaranteed the alias sets agree.  The intrinsic score is
        ``sum`` over ``contribs`` insertion order -- the one invariant
        every caller relies on for bit-identical scores -- and lives
        here so new slots need initializing in exactly one place.
        """
        tup = cls.__new__(cls)
        tup.bindings = bindings
        tup.contribs = contribs
        tup._provenance = provenance
        tup._intrinsic = sum(contribs.values())
        tup._aliases = None
        return tup

    @classmethod
    def single(cls, alias: str, row: Row, contrib: float) -> "STuple":
        # Join probes build millions of one-atom tuples; skip the
        # general constructor's validation and re-copying.
        return cls._from_parts(
            {alias: row}, {alias: contrib},
            frozenset(((alias, row.relation, row.tid),)),
        )

    # -- score access ------------------------------------------------------

    @property
    def intrinsic(self) -> float:
        """Sum of all atoms' score contributions."""
        return self._intrinsic

    @property
    def aliases(self) -> frozenset[str]:
        cached = self._aliases
        if cached is None:
            cached = self._aliases = frozenset(self.bindings)
        return cached

    @property
    def provenance(self) -> frozenset[tuple[str, str, int]]:
        return self._provenance

    def row(self, alias: str) -> Row:
        try:
            return self.bindings[alias]
        except KeyError:
            raise DataError(f"STuple has no binding for alias {alias!r}") from None

    def value(self, alias: str, attr: str) -> Any:
        return self.row(alias)[attr]

    # -- composition ---------------------------------------------------------

    def merge(self, other: "STuple") -> "STuple":
        """Combine two tuples with disjoint aliases into one."""
        if self.bindings.keys() & other.bindings.keys():
            overlap = self.aliases & other.aliases
            raise DataError(
                f"cannot merge STuples sharing aliases {sorted(overlap)}"
            )
        bindings = dict(self.bindings)
        bindings.update(other.bindings)
        contribs = dict(self.contribs)
        contribs.update(other.contribs)
        # Join hot path: no re-validation, provenance by set union.
        return STuple._from_parts(bindings, contribs,
                                  self._provenance | other._provenance)

    def extend_one(self, alias: str, row: Row, contrib: float) -> "STuple":
        """``merge`` specialized for adding a single new atom.

        The site-side join and the m-join probe loop grow bindings one
        atom at a time; going through ``single`` + ``merge`` built (and
        immediately discarded) an intermediate STuple per extension.
        Accumulation order matches ``merge`` exactly, so intrinsic
        scores stay bit-identical.
        """
        if alias in self.bindings:
            raise DataError(
                f"cannot merge STuples sharing aliases [{alias!r}]"
            )
        bindings = dict(self.bindings)
        bindings[alias] = row
        contribs = dict(self.contribs)
        contribs[alias] = contrib
        return STuple._from_parts(
            bindings, contribs,
            self._provenance | {(alias, row.relation, row.tid)})

    def rename(self, mapping: Mapping[str, str]) -> "STuple":
        """Return a copy with aliases renamed through ``mapping``.

        Aliases missing from the mapping keep their names.  Used when a
        shared subexpression's output is consumed by a query that refers
        to the same atoms under different aliases.
        """
        bindings = {mapping.get(a, a): row for a, row in self.bindings.items()}
        contribs = {mapping.get(a, a): c for a, c in self.contribs.items()}
        if len(bindings) != len(self.bindings):
            raise DataError(f"alias renaming {dict(mapping)} collapses aliases")
        return STuple(bindings, contribs)

    def project(self, aliases: frozenset[str] | set[str]) -> "STuple":
        """Restrict to a subset of aliases."""
        missing = set(aliases) - set(self.bindings)
        if missing:
            raise DataError(f"cannot project on absent aliases {sorted(missing)}")
        return STuple(
            {a: self.bindings[a] for a in aliases},
            {a: self.contribs[a] for a in aliases},
        )

    # -- value semantics ------------------------------------------------------

    def __hash__(self) -> int:
        return hash(self._provenance)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, STuple):
            return NotImplemented
        return self._provenance == other._provenance

    def __repr__(self) -> str:
        keys = ", ".join(
            f"{alias}={row.relation}#{row.tid}"
            for alias, row in sorted(self.bindings.items())
        )
        return f"STuple({keys}; intrinsic={self._intrinsic:.4f})"
