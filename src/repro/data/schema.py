"""Schema graphs.

A :class:`Schema` is the middleware's global picture of the federation:
relations (each hosted at some *site*, i.e. one simulated remote DBMS),
their attributes, and the edges -- foreign keys, record links, and other
potential join relationships -- connecting them (Figure 1 of the paper).

Edges carry a *cost*, used by the Q System scoring model (Section 2.1):
lower cost means a more trustworthy join path, and a conjunctive query's
static score component is derived from the costs of the edges it uses.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.common.errors import SchemaError


@dataclass(frozen=True)
class Attribute:
    """One column of a relation.

    ``is_key`` marks join/identifier columns (they get hash indexes at
    the site).  ``is_score`` marks columns that contribute to ranking
    (similarity scores on link tables, IR match scores, publication
    recency, ...); relations with no score attributes are the ones the
    Section 5.1.1 heuristic turns into probe-only sources.  ``is_text``
    marks columns indexed by the keyword inverted index.
    """

    name: str
    is_key: bool = False
    is_score: bool = False
    is_text: bool = False


@dataclass(frozen=True)
class Relation:
    """A named relation hosted at one site of the federation."""

    name: str
    attributes: tuple[Attribute, ...]
    site: str = "site0"
    node_cost: float = 0.0
    """Q System authoritativeness cost: lower is more authoritative."""

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(
                f"relation {self.name!r} has duplicate attributes: {names}"
            )

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def attribute(self, name: str) -> Attribute:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(f"relation {self.name!r} has no attribute {name!r}")

    def has_attribute(self, name: str) -> bool:
        return any(a.name == name for a in self.attributes)

    @property
    def key_attributes(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes if a.is_key)

    @property
    def score_attributes(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes if a.is_score)

    @property
    def text_attributes(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes if a.is_text)

    @property
    def has_score(self) -> bool:
        """Whether this relation can be streamed in rank order."""
        return bool(self.score_attributes)


@dataclass(frozen=True)
class SchemaEdge:
    """A joinable relationship between two relations.

    ``cost`` is the Q System edge cost c_e; ``kind`` distinguishes
    foreign keys from record-link tables and hyperlink-ish edges, which
    the cost model uses when deciding whether a join is cheap at the
    source (key-key joins) or expensive (non-key joins).
    """

    left_relation: str
    left_attr: str
    right_relation: str
    right_attr: str
    cost: float = 1.0
    kind: str = "fk"

    def touches(self, relation: str) -> bool:
        return relation in (self.left_relation, self.right_relation)

    def other(self, relation: str) -> str:
        if relation == self.left_relation:
            return self.right_relation
        if relation == self.right_relation:
            return self.left_relation
        raise SchemaError(f"{relation!r} is not part of edge {self}")

    def attrs_for(self, relation: str) -> tuple[str, str]:
        """Return ``(attr on relation, attr on the other relation)``."""
        if relation == self.left_relation:
            return self.left_attr, self.right_attr
        if relation == self.right_relation:
            return self.right_attr, self.left_attr
        raise SchemaError(f"{relation!r} is not part of edge {self}")


class Schema:
    """The federation's schema graph: relations plus join edges."""

    def __init__(self, relations: Iterable[Relation],
                 edges: Iterable[SchemaEdge] = ()) -> None:
        self._relations: dict[str, Relation] = {}
        for relation in relations:
            if relation.name in self._relations:
                raise SchemaError(f"duplicate relation {relation.name!r}")
            self._relations[relation.name] = relation
        self._edges: list[SchemaEdge] = []
        self._adjacency: dict[str, list[SchemaEdge]] = {
            name: [] for name in self._relations
        }
        for edge in edges:
            self.add_edge(edge)

    # -- construction ---------------------------------------------------

    def add_edge(self, edge: SchemaEdge) -> None:
        for relation, attr in ((edge.left_relation, edge.left_attr),
                               (edge.right_relation, edge.right_attr)):
            if relation not in self._relations:
                raise SchemaError(
                    f"edge {edge} references unknown relation {relation!r}"
                )
            if not self._relations[relation].has_attribute(attr):
                raise SchemaError(
                    f"edge {edge} references unknown attribute "
                    f"{relation}.{attr}"
                )
        self._edges.append(edge)
        self._adjacency[edge.left_relation].append(edge)
        if edge.right_relation != edge.left_relation:
            self._adjacency[edge.right_relation].append(edge)

    # -- lookups ----------------------------------------------------------

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    @property
    def relations(self) -> tuple[Relation, ...]:
        return tuple(self._relations.values())

    @property
    def edges(self) -> tuple[SchemaEdge, ...]:
        return tuple(self._edges)

    def edges_of(self, relation: str) -> tuple[SchemaEdge, ...]:
        if relation not in self._relations:
            raise SchemaError(f"unknown relation {relation!r}")
        return tuple(self._adjacency[relation])

    def neighbours(self, relation: str) -> tuple[str, ...]:
        return tuple(sorted({e.other(relation) for e in self.edges_of(relation)}))

    def edges_between(self, left: str, right: str) -> tuple[SchemaEdge, ...]:
        return tuple(e for e in self.edges_of(left) if e.other(left) == right)

    def sites(self) -> tuple[str, ...]:
        return tuple(sorted({r.site for r in self.relations}))

    def relations_at(self, site: str) -> tuple[Relation, ...]:
        return tuple(r for r in self.relations if r.site == site)

    # -- graph algorithms ---------------------------------------------------

    def is_connected(self, names: Iterable[str]) -> bool:
        """Whether the given relations form a connected subgraph."""
        names = list(names)
        if not names:
            return False
        keep = set(names)
        for name in keep:
            if name not in self._relations:
                raise SchemaError(f"unknown relation {name!r}")
        seen = {names[0]}
        frontier = [names[0]]
        while frontier:
            current = frontier.pop()
            for edge in self._adjacency[current]:
                nxt = edge.other(current)
                if nxt in keep and nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen == keep

    def shortest_path(self, source: str, target: str) -> list[SchemaEdge]:
        """BFS path between two relations; raises if unreachable."""
        if source == target:
            return []
        parents: dict[str, tuple[str, SchemaEdge]] = {}
        seen = {source}
        frontier = [source]
        while frontier:
            next_frontier: list[str] = []
            for current in frontier:
                for edge in self._adjacency[current]:
                    nxt = edge.other(current)
                    if nxt not in seen:
                        seen.add(nxt)
                        parents[nxt] = (current, edge)
                        if nxt == target:
                            return self._unwind(parents, source, target)
                        next_frontier.append(nxt)
            frontier = next_frontier
        raise SchemaError(f"no path between {source!r} and {target!r}")

    def _unwind(self, parents: dict[str, tuple[str, SchemaEdge]],
                source: str, target: str) -> list[SchemaEdge]:
        path: list[SchemaEdge] = []
        node = target
        while node != source:
            node, edge = parents[node]
            path.append(edge)
        path.reverse()
        return path

    def expand_neighbourhood(self, seeds: Iterable[str], hops: int
                             ) -> set[str]:
        """Every relation within ``hops`` edges of any seed."""
        current = set(seeds)
        for name in current:
            if name not in self._relations:
                raise SchemaError(f"unknown relation {name!r}")
        for _ in range(hops):
            grown = set(current)
            for name in current:
                grown.update(self.neighbours(name))
            if grown == current:
                break
            current = grown
        return current

    def validate(self) -> None:
        """Re-check internal consistency; raises SchemaError on failure."""
        for edge in self._edges:
            for relation, attr in ((edge.left_relation, edge.left_attr),
                                   (edge.right_relation, edge.right_attr)):
                self.relation(relation).attribute(attr)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Schema({len(self._relations)} relations, "
                f"{len(self._edges)} edges, {len(self.sites())} sites)")


def link_table(name: str, left: Relation, left_attr: str,
               right: Relation, right_attr: str, site: str,
               with_score: bool = True,
               cost: float = 1.0) -> tuple[Relation, tuple[SchemaEdge, ...]]:
    """Build a record-link relation bridging two others (orange squares
    in the paper's Figure 1), plus the two schema edges wiring it in.

    The link table carries foreign keys to both sides and, when
    ``with_score`` is set, a ``score`` similarity attribute -- matching
    the paper's synthetic setup where every synonym/relationship table
    gains a similarity score column.
    """
    attrs = [
        Attribute("left_ref", is_key=True),
        Attribute("right_ref", is_key=True),
    ]
    if with_score:
        attrs.append(Attribute("score", is_score=True))
    relation = Relation(name, tuple(attrs), site=site)
    edges = (
        SchemaEdge(left.name, left_attr, name, "left_ref",
                   cost=cost, kind="link"),
        SchemaEdge(name, "right_ref", right.name, right_attr,
                   cost=cost, kind="link"),
    )
    return relation, edges
