"""Synthetic data population.

Implements the paper's synthetic-workload recipe (Section 7): relations
populated with randomly generated tuples whose *scores, join keys, and
score-function coefficients are drawn from Zipfian distributions*, and
every synonym/relationship table extended with a similarity-score
attribute (that extension is done at schema-construction time in
:mod:`repro.data.gus`; this module fills the values in).

Join keys must actually join: attributes connected by schema edges draw
from a shared value domain, computed by union-find over the edge set,
so foreign keys land on existing keys with realistic Zipfian skew.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence

from repro.common.rng import ZipfSampler, make_rng
from repro.data.database import Federation
from repro.data.schema import Relation, Schema

#: Default vocabulary of "common biological terms" used for text
#: attributes and keyword workloads; ordered by intended popularity so
#: Zipfian draws make the head terms dominate, as in the paper.
BIO_VOCABULARY: tuple[str, ...] = (
    "protein", "gene", "membrane", "plasma", "metabolism", "kinase",
    "receptor", "enzyme", "binding", "transcription", "sequence",
    "family", "domain", "pathway", "mutation", "disease", "cell",
    "nucleus", "transport", "signal", "ligand", "antibody", "homolog",
    "mitochondria", "ribosome", "cytoplasm", "polymerase", "helicase",
    "phosphorylation", "apoptosis", "chromosome", "plasmid", "vesicle",
    "cortex", "synapse", "hormone", "peptide", "glycoprotein", "lipid",
    "oxidase",
)


class _DomainUnionFind:
    """Union-find over (relation, attribute) pairs linked by schema edges.

    Attributes in the same component share a join-key domain, so a
    foreign key generated on one side can match primary keys generated
    on the other.
    """

    def __init__(self) -> None:
        self._parent: dict[tuple[str, str], tuple[str, str]] = {}

    def find(self, item: tuple[str, str]) -> tuple[str, str]:
        parent = self._parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a: tuple[str, str], b: tuple[str, str]) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra


def compute_key_domains(schema: Schema,
                        cardinalities: Mapping[str, int],
                        domain_factor: float = 0.5,
                        min_domain: int = 8) -> dict[tuple[str, str], int]:
    """Domain size for every key attribute, shared across join partners.

    A component's domain is sized from the largest table touching it:
    ``max(min_domain, domain_factor * max_cardinality)``.  A smaller
    ``domain_factor`` means more duplicate keys, hence higher join
    fan-out.
    """
    uf = _DomainUnionFind()
    for edge in schema.edges:
        uf.union((edge.left_relation, edge.left_attr),
                 (edge.right_relation, edge.right_attr))
    component_max: dict[tuple[str, str], int] = {}
    for relation in schema.relations:
        for attr in relation.key_attributes:
            root = uf.find((relation.name, attr))
            cardinality = cardinalities.get(relation.name, 0)
            component_max[root] = max(component_max.get(root, 0), cardinality)
    domains: dict[tuple[str, str], int] = {}
    for relation in schema.relations:
        for attr in relation.key_attributes:
            root = uf.find((relation.name, attr))
            size = max(min_domain, int(domain_factor * component_max[root]))
            domains[(relation.name, attr)] = size
    return domains


class SyntheticDataGenerator:
    """Populates a federation with Zipf-skewed synthetic tuples."""

    def __init__(self, schema: Schema, seed: int = 0,
                 domain_factor: float = 0.5,
                 score_levels: int = 500,
                 zipf_theta: float = 1.0,
                 vocabulary: Sequence[str] = BIO_VOCABULARY,
                 words_per_text: tuple[int, int] = (2, 5)) -> None:
        self.schema = schema
        self.seed = seed
        self.domain_factor = domain_factor
        self.score_levels = score_levels
        self.zipf_theta = zipf_theta
        self.vocabulary = tuple(vocabulary)
        self.words_per_text = words_per_text

    def populate(self, federation: Federation,
                 cardinalities: Mapping[str, int]) -> dict[str, int]:
        """Fill every relation listed in ``cardinalities``.

        Returns the actual row counts loaded per relation.  Relations
        absent from the mapping are left empty (useful for tests).
        """
        domains = compute_key_domains(self.schema, cardinalities,
                                      self.domain_factor)
        loaded: dict[str, int] = {}
        for relation in self.schema.relations:
            count = cardinalities.get(relation.name)
            if not count:
                continue
            rows = self._rows_for(relation, count, domains)
            federation.load(relation.name, rows)
            loaded[relation.name] = count
        return loaded

    def _rows_for(self, relation: Relation, count: int,
                  domains: Mapping[tuple[str, str], int]
                  ) -> list[dict[str, object]]:
        rng = make_rng(self.seed, "data", relation.name)
        key_samplers = {
            attr: ZipfSampler(domains[(relation.name, attr)],
                              theta=self.zipf_theta,
                              rng=make_rng(self.seed, "key",
                                           relation.name, attr))
            for attr in relation.key_attributes
        }
        score_sampler = ZipfSampler(self.score_levels, theta=self.zipf_theta,
                                    rng=make_rng(self.seed, "score",
                                                 relation.name))
        word_sampler = ZipfSampler(len(self.vocabulary),
                                   theta=self.zipf_theta,
                                   rng=make_rng(self.seed, "text",
                                                relation.name))
        rows = []
        for i in range(count):
            values: dict[str, object] = {}
            for attr in relation.attributes:
                if attr.is_key:
                    values[attr.name] = key_samplers[attr.name].sample()
                elif attr.is_score:
                    rank = score_sampler.sample()
                    values[attr.name] = round(
                        1.0 - rank / self.score_levels, 6)
                elif attr.is_text:
                    values[attr.name] = self._text(rng, word_sampler)
                else:
                    values[attr.name] = rng.randrange(1_000_000)
            rows.append(values)
        return rows

    def _text(self, rng: random.Random, word_sampler: ZipfSampler) -> str:
        low, high = self.words_per_text
        n_words = rng.randint(low, high)
        words = [self.vocabulary[word_sampler.sample()] for _ in range(n_words)]
        return " ".join(words)
