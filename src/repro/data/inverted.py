"""Keyword inverted index over the federation.

Keyword search systems match each search term against (a) relation
*metadata* (table/column names -- e.g. ``k3: "gene"`` matching the
``GeneInfo`` table in Figure 1) and (b) relation *content* through a
precomputed inverted index over text attributes (``k2: "plasma
membrane"`` matching rows of ``Term``).  This module provides both.

A content match later becomes a ``contains`` selection on the matched
relation inside each candidate network, and the relation's stored
IR-style score attribute supplies the dynamic score component.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.data.database import Federation
from repro.plan.expressions import Selection


@dataclass(frozen=True)
class KeywordMatch:
    """One keyword's match against one relation.

    ``via`` is ``"metadata"`` (table name matched; the whole relation is
    relevant, no selection needed) or ``"content"`` (rows matched; a
    ``contains`` selection on ``attr`` restricts the relation).
    ``strength`` in (0, 1] orders alternative matches -- metadata
    matches are strongest, content matches scale with the fraction of
    matching rows (rarer terms are more selective and more useful).
    """

    keyword: str
    relation: str
    via: str
    attr: str | None
    strength: float
    matching_rows: int = 0

    def selection(self, alias: str) -> Selection | None:
        """The selection this match imposes on the matched atom."""
        if self.via == "metadata" or self.attr is None:
            return None
        return Selection(alias, self.attr, "contains", self.keyword)


class InvertedIndex:
    """Token -> relation posting lists over every site's text columns."""

    def __init__(self, federation: Federation) -> None:
        self.federation = federation
        self.schema = federation.schema
        # token -> relation -> attr -> row count
        self._postings: dict[str, dict[str, dict[str, int]]] = defaultdict(
            lambda: defaultdict(lambda: defaultdict(int))
        )
        self._row_counts: dict[str, int] = {}
        self._build()

    def _build(self) -> None:
        for relation in self.schema.relations:
            text_attrs = relation.text_attributes
            database = self.federation.database_for(relation.name)
            rows = database.scan_sorted(relation.name)
            self._row_counts[relation.name] = len(rows)
            if not text_attrs:
                continue
            for row in rows:
                for attr in text_attrs:
                    for token in str(row[attr]).lower().split():
                        self._postings[token][relation.name][attr] += 1

    # -- lookups -----------------------------------------------------------

    def matches(self, keyword: str, max_matches: int = 5
                ) -> list[KeywordMatch]:
        """All relations matching ``keyword``, strongest first.

        Metadata matches (keyword occurs in the relation name,
        case-insensitively) come first with strength 1.0; content
        matches follow, ranked by selectivity (rarer is stronger).
        """
        keyword = keyword.strip().lower()
        out: list[KeywordMatch] = []
        for relation in self.schema.relations:
            if keyword in relation.name.lower():
                out.append(KeywordMatch(keyword, relation.name,
                                        "metadata", None, 1.0))
        # Multi-word phrases match content when every word matches the
        # same attribute ("plasma membrane" is matched via "contains").
        words = keyword.split()
        candidate_attrs: dict[tuple[str, str], int] = {}
        for word in words:
            for relation_name, attrs in self._postings.get(word, {}).items():
                for attr, count in attrs.items():
                    key = (relation_name, attr)
                    previous = candidate_attrs.get(key)
                    candidate_attrs[key] = (
                        count if previous is None else min(previous, count)
                    )
        for (relation_name, attr), count in sorted(candidate_attrs.items()):
            total = max(1, self._row_counts.get(relation_name, 1))
            selectivity = count / total
            if selectivity <= 0:
                continue
            # Rarer matches are more informative; cap below metadata.
            strength = 0.9 * (1.0 - selectivity)
            out.append(KeywordMatch(keyword, relation_name, "content",
                                    attr, round(strength, 6), count))
        out.sort(key=lambda m: (-m.strength, m.relation))
        return out[:max_matches]

    def vocabulary(self) -> tuple[str, ...]:
        """Every indexed token, most frequent first (workload generators
        draw Zipfian keyword pairs from this)."""
        totals = {
            token: sum(sum(attrs.values()) for attrs in relations.values())
            for token, relations in self._postings.items()
        }
        return tuple(sorted(totals, key=lambda t: (-totals[t], t)))

    def document_frequency(self, token: str) -> int:
        relations = self._postings.get(token.lower(), {})
        return sum(sum(attrs.values()) for attrs in relations.values())
