"""Simulated remote site databases.

The paper's middleware talks to remote MySQL servers that can (a) stream
the results of a pushed-down SQL subquery in nonincreasing score order
and (b) answer key-probe lookups.  :class:`Database` reproduces exactly
that contract for one *site* of the federation, entirely in memory:

* :meth:`Database.scan_sorted` -- score-ordered scan of one relation
  (with optional selections), the basis of streaming sources;
* :meth:`Database.probe` -- indexed key lookup, the basis of
  random-access sources;
* :meth:`Database.execute_spj` -- evaluate a pushed-down
  select-project-join subexpression locally at the site and return its
  full result sorted by intrinsic score, which is what the optimizer's
  push-down decisions (Section 5.1) translate to.

A :class:`Federation` bundles the per-site databases behind one facade
and also serves the statistics (cardinalities, distinct key counts,
score maxima) that the cost model consumes.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.common.errors import DataError, SchemaError
from repro.data.rows import Row, STuple
from repro.data.schema import Relation, Schema
from repro.plan.expressions import SPJ, Selection


@dataclass(frozen=True)
class RelationStats:
    """Optimizer-facing statistics for one relation."""

    cardinality: int
    distinct: Mapping[str, int]
    max_contribution: float

    def distinct_of(self, attr: str) -> int:
        """Distinct value count for ``attr`` (>= 1 so ratios stay finite)."""
        return max(1, self.distinct.get(attr, self.cardinality or 1))


class _Table:
    """Storage for one relation at one site: rows, key indexes, rank order."""

    def __init__(self, relation: Relation) -> None:
        self.relation = relation
        self.rows: list[Row] = []
        self.contributions: dict[int, float] = {}
        self.indexes: dict[str, dict[Any, list[int]]] = {
            attr: {} for attr in relation.key_attributes
        }
        self.sorted_tids: list[int] = []
        self._dirty = False

    def insert(self, values: Mapping[str, Any]) -> Row:
        missing = set(self.relation.attribute_names) - set(values)
        if missing:
            raise DataError(
                f"row for {self.relation.name!r} missing attributes "
                f"{sorted(missing)}"
            )
        tid = len(self.rows)
        row = Row(self.relation.name, tid, dict(values))
        self.rows.append(row)
        contribution = sum(
            float(values[attr]) for attr in self.relation.score_attributes
        )
        self.contributions[tid] = contribution
        for attr, index in self.indexes.items():
            index.setdefault(values[attr], []).append(tid)
        self._dirty = True
        return row

    def _ensure_sorted(self) -> None:
        if self._dirty:
            self.sorted_tids = sorted(
                range(len(self.rows)),
                key=lambda tid: (-self.contributions[tid], tid),
            )
            self._dirty = False

    def scan_sorted(self) -> list[int]:
        self._ensure_sorted()
        return self.sorted_tids

    def stats(self) -> RelationStats:
        distinct = {
            attr: len(index) for attr, index in self.indexes.items()
        }
        max_contribution = max(self.contributions.values(), default=0.0)
        return RelationStats(len(self.rows), distinct, max_contribution)


class Database:
    """One simulated remote DBMS hosting a subset of the schema."""

    def __init__(self, site: str, schema: Schema) -> None:
        self.site = site
        self.schema = schema
        self._tables: dict[str, _Table] = {}
        for relation in schema.relations_at(site):
            self._tables[relation.name] = _Table(relation)

    # -- loading -----------------------------------------------------------

    def load(self, relation: str, rows: Iterable[Mapping[str, Any]]) -> int:
        """Bulk-insert rows; returns the number inserted."""
        table = self._table(relation)
        count = 0
        for values in rows:
            table.insert(values)
            count += 1
        return count

    def insert(self, relation: str, values: Mapping[str, Any]) -> Row:
        return self._table(relation).insert(values)

    def _table(self, relation: str) -> _Table:
        try:
            return self._tables[relation]
        except KeyError:
            raise DataError(
                f"site {self.site!r} does not host relation {relation!r}"
            ) from None

    def hosts(self, relation: str) -> bool:
        return relation in self._tables

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    # -- statistics ----------------------------------------------------------

    def stats(self, relation: str) -> RelationStats:
        return self._table(relation).stats()

    def cardinality(self, relation: str) -> int:
        return len(self._table(relation).rows)

    def contribution(self, relation: str, tid: int) -> float:
        return self._table(relation).contributions[tid]

    # -- access paths ----------------------------------------------------------

    def scan_sorted(self, relation: str,
                    selections: Sequence[Selection] = ()) -> list[Row]:
        """All rows of ``relation`` satisfying ``selections``, sorted by
        nonincreasing score contribution (ties by tid)."""
        table = self._table(relation)
        out = []
        for tid in table.scan_sorted():
            row = table.rows[tid]
            if all(sel.matches(row.values) for sel in selections):
                out.append(row)
        return out

    def probe(self, relation: str, attr: str, value: Any,
              selections: Sequence[Selection] = ()) -> list[Row]:
        """Indexed lookup of rows with ``attr == value``.

        Requires ``attr`` to be a key attribute (indexed); score order
        is preserved among the matches.
        """
        table = self._table(relation)
        if attr not in table.indexes:
            raise DataError(
                f"{relation}.{attr} is not indexed at site {self.site!r}; "
                f"indexed attributes: {sorted(table.indexes)}"
            )
        tids = table.indexes[attr].get(value, [])
        rows = [table.rows[tid] for tid in tids]
        rows.sort(key=lambda r: (-table.contributions[r.tid], r.tid))
        if selections:
            rows = [r for r in rows
                    if all(sel.matches(r.values) for sel in selections)]
        return rows

    # -- pushed-down subqueries ------------------------------------------------

    def execute_spj(self, expr: SPJ) -> list[STuple]:
        """Evaluate a select-project-join expression hosted at this site.

        Every atom must name a relation stored here.  The result is the
        complete join, sorted by nonincreasing intrinsic score, which a
        :class:`~repro.data.sources.StreamingSource` then doles out
        tuple by tuple with simulated network delays.
        """
        for atom in expr.atoms:
            if not self.hosts(atom.relation):
                raise DataError(
                    f"cannot push {expr!r} to site {self.site!r}: "
                    f"relation {atom.relation!r} is hosted elsewhere"
                )
        if not expr.is_connected():
            raise DataError(
                f"refusing to execute disconnected expression {expr!r} "
                "(cross products are never pushed down)"
            )
        candidates: dict[str, list[Row]] = {}
        for atom in expr.atoms:
            candidates[atom.alias] = self.scan_sorted(
                atom.relation, expr.selections_on(atom.alias)
            )
        order = self._join_order(expr, candidates)
        first = order[0]
        partials = [
            STuple.single(first, row, self.contribution(row.relation, row.tid))
            for row in candidates[first]
        ]
        bound = {first}
        for alias in order[1:]:
            preds = [
                (pred.side_for(alias)[0],
                 pred.other(alias),
                 pred.side_for(pred.other(alias))[0])
                for pred in expr.joins_on(alias)
                if pred.other(alias) in bound
            ]
            index: dict[tuple[Any, ...], list[Row]] = {}
            for row in candidates[alias]:
                key = tuple(row[my_attr] for my_attr, _o, _oa in preds)
                index.setdefault(key, []).append(row)
            grown: list[STuple] = []
            for partial in partials:
                key = tuple(
                    partial.value(other_alias, other_attr)
                    for _my, other_alias, other_attr in preds
                )
                for row in index.get(key, ()):
                    addition = STuple.single(
                        alias, row, self.contribution(row.relation, row.tid)
                    )
                    grown.append(partial.merge(addition))
            partials = grown
            bound.add(alias)
            if not partials:
                break
        partials.sort(key=lambda t: (-t.intrinsic, sorted(t.provenance)))
        return partials

    def _join_order(self, expr: SPJ,
                    candidates: Mapping[str, list[Row]]) -> list[str]:
        """Greedy connected join order starting from the smallest input."""
        remaining = set(expr.aliases)
        start = min(remaining, key=lambda a: (len(candidates[a]), a))
        order = [start]
        remaining.remove(start)
        while remaining:
            frontier = [
                alias for alias in remaining
                if any(pred.other(alias) in order
                       for pred in expr.joins_on(alias))
            ]
            if not frontier:
                raise DataError(
                    f"join graph of {expr!r} became disconnected during "
                    "ordering; this indicates a malformed expression"
                )
            nxt = min(frontier, key=lambda a: (len(candidates[a]), a))
            order.append(nxt)
            remaining.remove(nxt)
        return order


class Federation:
    """All sites of the data-integration scenario behind one facade."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._sites: dict[str, Database] = {
            site: Database(site, schema) for site in schema.sites()
        }

    @property
    def sites(self) -> tuple[str, ...]:
        return tuple(self._sites)

    def database(self, site: str) -> Database:
        try:
            return self._sites[site]
        except KeyError:
            raise DataError(f"unknown site {site!r}") from None

    def database_for(self, relation: str) -> Database:
        return self.database(self.schema.relation(relation).site)

    def load(self, relation: str, rows: Iterable[Mapping[str, Any]]) -> int:
        return self.database_for(relation).load(relation, rows)

    def stats(self, relation: str) -> RelationStats:
        return self.database_for(relation).stats(relation)

    def cardinality(self, relation: str) -> int:
        return self.database_for(relation).cardinality(relation)

    def site_of_expression(self, expr: SPJ) -> str | None:
        """The single site hosting every atom of ``expr``, or ``None``
        if its relations span sites (such expressions cannot be pushed
        down and must be joined in the middleware)."""
        sites = {
            self.schema.relation(atom.relation).site for atom in expr.atoms
        }
        if len(sites) == 1:
            return next(iter(sites))
        return None

    def execute_spj(self, expr: SPJ) -> list[STuple]:
        site = self.site_of_expression(expr)
        if site is None:
            raise DataError(
                f"expression {expr!r} spans multiple sites and cannot be "
                "executed by a single remote database"
            )
        return self.database(site).execute_spj(expr)

    def validate_against_schema(self) -> None:
        """Check that every schema relation is hosted somewhere."""
        for relation in self.schema.relations:
            if relation.site not in self._sites:
                raise SchemaError(
                    f"relation {relation.name!r} claims unknown site "
                    f"{relation.site!r}"
                )
