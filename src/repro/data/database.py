"""Simulated remote site databases.

The paper's middleware talks to remote MySQL servers that can (a) stream
the results of a pushed-down SQL subquery in nonincreasing score order
and (b) answer key-probe lookups.  :class:`Database` reproduces exactly
that contract for one *site* of the federation, entirely in memory:

* :meth:`Database.scan_sorted` -- score-ordered scan of one relation
  (with optional selections), the basis of streaming sources;
* :meth:`Database.probe` -- indexed key lookup, the basis of
  random-access sources;
* :meth:`Database.execute_spj` -- evaluate a pushed-down
  select-project-join subexpression locally at the site and return its
  full result sorted by intrinsic score, which is what the optimizer's
  push-down decisions (Section 5.1) translate to.

A :class:`Federation` bundles the per-site databases behind one facade
and also serves the statistics (cardinalities, distinct key counts,
score maxima) that the cost model consumes.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.common.errors import DataError, SchemaError
from repro.data.rows import Row, STuple
from repro.data.schema import Relation, Schema
from repro.plan.expressions import SPJ, Selection


@dataclass(frozen=True)
class RelationStats:
    """Optimizer-facing statistics for one relation."""

    cardinality: int
    distinct: Mapping[str, int]
    max_contribution: float

    def distinct_of(self, attr: str) -> int:
        """Distinct value count for ``attr`` (>= 1 so ratios stay finite)."""
        return max(1, self.distinct.get(attr, self.cardinality or 1))


class _Table:
    """Storage for one relation at one site: rows, key indexes, rank order."""

    def __init__(self, relation: Relation) -> None:
        self.relation = relation
        self.rows: list[Row] = []
        self.contributions: dict[int, float] = {}
        self.indexes: dict[str, dict[Any, list[int]]] = {
            attr: {} for attr in relation.key_attributes
        }
        self.sorted_tids: list[int] = []
        self._dirty = False

    def insert(self, values: Mapping[str, Any]) -> Row:
        missing = set(self.relation.attribute_names) - set(values)
        if missing:
            raise DataError(
                f"row for {self.relation.name!r} missing attributes "
                f"{sorted(missing)}"
            )
        tid = len(self.rows)
        row = Row(self.relation.name, tid, dict(values))
        self.rows.append(row)
        contribution = sum(
            float(values[attr]) for attr in self.relation.score_attributes
        )
        self.contributions[tid] = contribution
        for attr, index in self.indexes.items():
            index.setdefault(values[attr], []).append(tid)
        self._dirty = True
        return row

    def _ensure_sorted(self) -> None:
        if self._dirty:
            self.sorted_tids = sorted(
                range(len(self.rows)),
                key=lambda tid: (-self.contributions[tid], tid),
            )
            self._dirty = False

    def scan_sorted(self) -> list[int]:
        self._ensure_sorted()
        return self.sorted_tids

    def stats(self) -> RelationStats:
        distinct = {
            attr: len(index) for attr, index in self.indexes.items()
        }
        max_contribution = max(self.contributions.values(), default=0.0)
        return RelationStats(len(self.rows), distinct, max_contribution)


class Database:
    """One simulated remote DBMS hosting a subset of the schema."""

    def __init__(self, site: str, schema: Schema) -> None:
        self.site = site
        self.schema = schema
        self._tables: dict[str, _Table] = {}
        for relation in schema.relations_at(site):
            self._tables[relation.name] = _Table(relation)

    # -- loading -----------------------------------------------------------

    def load(self, relation: str, rows: Iterable[Mapping[str, Any]]) -> int:
        """Bulk-insert rows; returns the number inserted."""
        table = self._table(relation)
        count = 0
        for values in rows:
            table.insert(values)
            count += 1
        return count

    def insert(self, relation: str, values: Mapping[str, Any]) -> Row:
        return self._table(relation).insert(values)

    def _table(self, relation: str) -> _Table:
        try:
            return self._tables[relation]
        except KeyError:
            raise DataError(
                f"site {self.site!r} does not host relation {relation!r}"
            ) from None

    def hosts(self, relation: str) -> bool:
        return relation in self._tables

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    # -- statistics ----------------------------------------------------------

    def stats(self, relation: str) -> RelationStats:
        return self._table(relation).stats()

    def cardinality(self, relation: str) -> int:
        return len(self._table(relation).rows)

    def contribution(self, relation: str, tid: int) -> float:
        return self._table(relation).contributions[tid]

    # -- access paths ----------------------------------------------------------

    def scan_sorted(self, relation: str,
                    selections: Sequence[Selection] = ()) -> list[Row]:
        """All rows of ``relation`` satisfying ``selections``, sorted by
        nonincreasing score contribution (ties by tid)."""
        table = self._table(relation)
        out = []
        for tid in table.scan_sorted():
            row = table.rows[tid]
            if all(sel.matches(row.values) for sel in selections):
                out.append(row)
        return out

    def probe(self, relation: str, attr: str, value: Any,
              selections: Sequence[Selection] = ()) -> list[Row]:
        """Indexed lookup of rows with ``attr == value``.

        Requires ``attr`` to be a key attribute (indexed); score order
        is preserved among the matches.
        """
        table = self._table(relation)
        if attr not in table.indexes:
            raise DataError(
                f"{relation}.{attr} is not indexed at site {self.site!r}; "
                f"indexed attributes: {sorted(table.indexes)}"
            )
        tids = table.indexes[attr].get(value, [])
        rows = [table.rows[tid] for tid in tids]
        rows.sort(key=lambda r: (-table.contributions[r.tid], r.tid))
        if selections:
            rows = [r for r in rows
                    if all(sel.matches(r.values) for sel in selections)]
        return rows

    # -- pushed-down subqueries ------------------------------------------------

    def execute_spj(self, expr: SPJ) -> list[STuple]:
        """Evaluate a select-project-join expression hosted at this site.

        Every atom must name a relation stored here.  The result is the
        complete join, sorted by nonincreasing intrinsic score, which a
        :class:`~repro.data.sources.StreamingSource` then doles out
        tuple by tuple with simulated network delays.
        """
        for atom in expr.atoms:
            if not self.hosts(atom.relation):
                raise DataError(
                    f"cannot push {expr!r} to site {self.site!r}: "
                    f"relation {atom.relation!r} is hosted elsewhere"
                )
        if not expr.is_connected():
            raise DataError(
                f"refusing to execute disconnected expression {expr!r} "
                "(cross products are never pushed down)"
            )
        candidates: dict[str, list[Row]] = {}
        contrib_maps: dict[str, dict[int, float]] = {}
        for atom in expr.atoms:
            candidates[atom.alias] = self.scan_sorted(
                atom.relation, expr.selections_on(atom.alias)
            )
            contrib_maps[atom.alias] = self._table(atom.relation).contributions
        order = self._join_order(expr, candidates)
        first = order[0]
        first_contribs = contrib_maps[first]
        partials = [
            STuple.single(first, row, first_contribs[row.tid])
            for row in candidates[first]
        ]
        bound = {first}
        for alias in order[1:]:
            preds = [
                (pred.side_for(alias)[0],
                 pred.other(alias),
                 pred.side_for(pred.other(alias))[0])
                for pred in expr.joins_on(alias)
                if pred.other(alias) in bound
            ]
            index: dict[tuple[Any, ...], list[Row]] = {}
            for row in candidates[alias]:
                values = row.values
                key = tuple(values[my_attr] for my_attr, _o, _oa in preds)
                index.setdefault(key, []).append(row)
            alias_contribs = contrib_maps[alias]
            grown: list[STuple] = []
            append = grown.append
            for partial in partials:
                bindings = partial.bindings
                key = tuple(
                    bindings[other_alias].values[other_attr]
                    for _my, other_alias, other_attr in preds
                )
                rows = index.get(key)
                if rows:
                    for row in rows:
                        append(partial.extend_one(
                            alias, row, alias_contribs[row.tid]))
            partials = grown
            bound.add(alias)
            if not partials:
                break
        partials.sort(key=lambda t: (-t.intrinsic, sorted(t.provenance)))
        return partials

    def ranked_producer(self, expr: SPJ) -> "RankedSPJProducer":
        """Incremental, ranked evaluation of a pushed-down expression.

        Returns a producer whose output sequence is *identical* to
        :meth:`execute_spj`'s list, but computed lazily: streaming
        sources that read only a prefix (the common case -- top-k
        processing stops early) no longer pay for joining and sorting
        the full result at the site.
        """
        return RankedSPJProducer(self, expr)

    def _join_order(self, expr: SPJ,
                    candidates: Mapping[str, list[Row]]) -> list[str]:
        """Greedy connected join order starting from the smallest input."""
        remaining = set(expr.aliases)
        start = min(remaining, key=lambda a: (len(candidates[a]), a))
        order = [start]
        remaining.remove(start)
        while remaining:
            frontier = [
                alias for alias in remaining
                if any(pred.other(alias) in order
                       for pred in expr.joins_on(alias))
            ]
            if not frontier:
                raise DataError(
                    f"join graph of {expr!r} became disconnected during "
                    "ordering; this indicates a malformed expression"
                )
            nxt = min(frontier, key=lambda a: (len(candidates[a]), a))
            order.append(nxt)
            remaining.remove(nxt)
        return order


#: Safety margin for the producer's release gate: strictly larger than
#: accumulated float rounding on the corner bound, strictly smaller
#: than any meaningful score gap.
_BOUND_MARGIN = 1e-9


class RankedSPJProducer:
    """Rank-by-rank evaluation of one pushed-down SPJ expression.

    Produces exactly the sequence ``execute_spj`` returns -- results in
    nonincreasing intrinsic order, ties broken by sorted provenance --
    without materializing the full join first:

    * per-alias candidate rows are scanned in nonincreasing
      contribution order (the same ``scan_sorted`` the batch path
      uses);
    * each *pull* takes the next row of the alias attaining the HRJN
      corner bound, joins it against the already-pulled rows of the
      other aliases through hash indexes, and buffers the new results;
    * a buffered result is released only when its score strictly beats
      the corner bound (no future result can reach it), at which point
      every tie is already buffered and the heap's provenance ordering
      reproduces the batch path's sort exactly.

    Bit-identical scores: result tuples are canonicalized to the batch
    path's join order before scoring, so the float accumulation order
    (and therefore every downstream threshold comparison) is unchanged.
    """

    def __init__(self, database: Database, expr: SPJ) -> None:
        for atom in expr.atoms:
            if not database.hosts(atom.relation):
                raise DataError(
                    f"cannot push {expr!r} to site {database.site!r}: "
                    f"relation {atom.relation!r} is hosted elsewhere"
                )
        if not expr.is_connected():
            raise DataError(
                f"refusing to execute disconnected expression {expr!r} "
                "(cross products are never pushed down)"
            )
        self.expr = expr
        self.aliases = list(expr.aliases)
        self._cands: dict[str, list[Row]] = {}
        self._contribs: dict[str, dict[int, float]] = {}
        for atom in expr.atoms:
            self._cands[atom.alias] = database.scan_sorted(
                atom.relation, expr.selections_on(atom.alias)
            )
            self._contribs[atom.alias] = \
                database._table(atom.relation).contributions
        #: The batch path's join order; results are canonicalized to it
        #: so intrinsic scores accumulate identically.
        self._build_order = database._join_order(expr, self._cands)
        self._pos = {alias: 0 for alias in self.aliases}
        #: An alias with no candidate rows can never contribute: the
        #: join is empty and no pull can change that.
        self._dead = any(not rows for rows in self._cands.values())
        if not self._dead:
            tops = {
                alias: self._contribs[alias][rows[0].tid]
                for alias, rows in self._cands.items()
            }
            total = sum(tops.values())
            self._others_top = {
                alias: total - tops[alias] for alias in self.aliases
            }
        else:
            self._others_top = {alias: 0.0 for alias in self.aliases}
        self._plans = {
            alias: self._extension_plan(alias) for alias in self.aliases
        }
        self._index_attrs: dict[str, set[str]] = {
            alias: set() for alias in self.aliases
        }
        for plan in self._plans.values():
            for target, (_o_alias, _o_attr, t_attr), verify in plan:
                self._index_attrs[target].add(t_attr)
        self._indexes: dict[str, dict[str, dict[Any, list[Row]]]] = {
            alias: {attr: {} for attr in attrs}
            for alias, attrs in self._index_attrs.items()
        }
        #: (negated score, provenance sort key, result) min-heap.
        self._buffer: list[tuple[float, tuple, STuple]] = []

    def _extension_plan(self, start: str
                        ) -> list[tuple[str, tuple, list[tuple]]]:
        """Connected probe order for results driven by ``start``:
        per step the target alias, the probing predicate as
        ``(partial_alias, partial_attr, target_attr)``, and the
        remaining predicates to verify."""
        bound = {start}
        remaining = [a for a in self.aliases if a != start]
        steps: list[tuple[str, tuple, list[tuple]]] = []
        while remaining:
            chosen = None
            for target in remaining:
                cross = []
                for pred in self.expr.joins_on(target):
                    other = pred.other(target)
                    if other in bound:
                        cross.append((other, pred.side_for(other)[0],
                                      pred.side_for(target)[0]))
                if cross:
                    chosen = (target, cross[0], cross[1:])
                    break
            if chosen is None:
                raise DataError(
                    f"join graph of {self.expr!r} became disconnected "
                    "during ordering; this indicates a malformed expression"
                )
            steps.append(chosen)
            bound.add(chosen[0])
            remaining.remove(chosen[0])
        return steps

    def _preferred(self) -> tuple[str | None, float]:
        """The alias whose next pull attains the corner bound, plus the
        bound itself; ``(None, -inf)`` once every input is exhausted."""
        best: str | None = None
        best_value = float("-inf")
        for alias in self.aliases:
            rows = self._cands[alias]
            position = self._pos[alias]
            if position >= len(rows):
                continue
            value = self._contribs[alias][rows[position].tid] \
                + self._others_top[alias]
            if value > best_value:
                best_value = value
                best = alias
        return best, best_value

    def _pull(self, alias: str) -> None:
        """Read one row, join it against everything already seen,
        buffer the canonicalized results, then index the row."""
        row = self._cands[alias][self._pos[alias]]
        self._pos[alias] += 1
        partials: list[dict[str, Row]] = [{alias: row}]
        for target, (o_alias, o_attr, t_attr), verify in self._plans[alias]:
            index = self._indexes[target][t_attr]
            grown: list[dict[str, Row]] = []
            for partial in partials:
                value = partial[o_alias].values[o_attr]
                matches = index.get(value)
                if not matches:
                    continue
                for candidate in matches:
                    ok = True
                    for vo_alias, vo_attr, vt_attr in verify:
                        if candidate.values[vt_attr] \
                                != partial[vo_alias].values[vo_attr]:
                            ok = False
                            break
                    if ok:
                        extended = dict(partial)
                        extended[target] = candidate
                        grown.append(extended)
            partials = grown
            if not partials:
                break
        for attr in self._index_attrs[alias]:
            self._indexes[alias][attr].setdefault(
                row.values[attr], []).append(row)
        if not partials:
            return
        contribs_of = self._contribs
        for partial in partials:
            bindings = {a: partial[a] for a in self._build_order}
            tup = STuple._from_parts(
                bindings,
                {a: contribs_of[a][partial[a].tid]
                 for a in self._build_order},
                frozenset((a, r.relation, r.tid)
                          for a, r in bindings.items()),
            )
            heapq.heappush(
                self._buffer,
                (-tup._intrinsic, tuple(sorted(tup._provenance)), tup),
            )

    def produce(self) -> STuple | None:
        """The next result in ranked order, or ``None`` when done."""
        if self._dead:
            return None
        buffer = self._buffer
        while True:
            preferred, corner = self._preferred()
            if buffer:
                if preferred is None \
                        or -buffer[0][0] > corner + _BOUND_MARGIN:
                    return heapq.heappop(buffer)[2]
            elif preferred is None:
                return None
            self._pull(preferred)


class Federation:
    """All sites of the data-integration scenario behind one facade."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._sites: dict[str, Database] = {
            site: Database(site, schema) for site in schema.sites()
        }

    @property
    def sites(self) -> tuple[str, ...]:
        return tuple(self._sites)

    def database(self, site: str) -> Database:
        try:
            return self._sites[site]
        except KeyError:
            raise DataError(f"unknown site {site!r}") from None

    def database_for(self, relation: str) -> Database:
        return self.database(self.schema.relation(relation).site)

    def load(self, relation: str, rows: Iterable[Mapping[str, Any]]) -> int:
        return self.database_for(relation).load(relation, rows)

    def stats(self, relation: str) -> RelationStats:
        return self.database_for(relation).stats(relation)

    def cardinality(self, relation: str) -> int:
        return self.database_for(relation).cardinality(relation)

    def site_of_expression(self, expr: SPJ) -> str | None:
        """The single site hosting every atom of ``expr``, or ``None``
        if its relations span sites (such expressions cannot be pushed
        down and must be joined in the middleware)."""
        sites = {
            self.schema.relation(atom.relation).site for atom in expr.atoms
        }
        if len(sites) == 1:
            return next(iter(sites))
        return None

    def execute_spj(self, expr: SPJ) -> list[STuple]:
        site = self.site_of_expression(expr)
        if site is None:
            raise DataError(
                f"expression {expr!r} spans multiple sites and cannot be "
                "executed by a single remote database"
            )
        return self.database(site).execute_spj(expr)

    def validate_against_schema(self) -> None:
        """Check that every schema relation is hosted somewhere."""
        for relation in self.schema.relations:
            if relation.site not in self._sites:
                raise SchemaError(
                    f"relation {relation.name!r} claims unknown site "
                    f"{relation.site!r}"
                )
