"""A Pfam/InterPro-like corpus for the "real data" experiments.

Section 7.5 of the paper evaluates over real dumps of Pfam (protein
families, with relationship tables to protein sequences) and InterPro
(integrated protein family/sequence data), joined through a Pfam-to-
InterPro mapping table, with MySQL full-text match scores plus one
extra score attribute: publication year (recency).

We cannot ship those dumps, so this module builds a corpus with the
same *structure and statistics profile*: two sites (``pfam`` and
``interpro``), family/sequence/publication relations that are an order
of magnitude larger than the GUS-like tables, a cross-site mapping
table, text attributes carrying vocabulary terms (matched by the
inverted index with an IR-style stored ``relevance`` score standing in
for MySQL's similarity score), and a normalized publication-year
``recency`` score attribute.

What matters for Figure 12 is preserved: fewer candidate networks per
keyword query (the schema is small, so each UQ yields ~4 CQs), much
larger per-relation cardinalities (more computation and contention in
the middleware), and two score attributes feeding the rank model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.database import Federation
from repro.data.generator import SyntheticDataGenerator
from repro.data.schema import Attribute, Relation, Schema, SchemaEdge


@dataclass(frozen=True)
class BioDBConfig:
    """Scale knobs for the Pfam/InterPro-like instance."""

    n_families: int = 1200
    n_sequences: int = 4000
    n_memberships: int = 6000
    n_publications: int = 1500
    n_entries: int = 1000
    n_mappings: int = 1400
    n_entry_pubs: int = 1800
    domain_factor: float = 0.3
    seed: int = 23

    @classmethod
    def tiny(cls, seed: int = 23) -> "BioDBConfig":
        """Small instance for unit tests."""
        return cls(n_families=120, n_sequences=300, n_memberships=450,
                   n_publications=150, n_entries=100, n_mappings=140,
                   n_entry_pubs=180, seed=seed)


def biodb_schema() -> Schema:
    """The Pfam/InterPro-like schema: 7 relations across 2 sites."""
    relations = [
        Relation("PfamFamily", (
            Attribute("pfam_acc", is_key=True),
            Attribute("description", is_text=True),
            Attribute("relevance", is_score=True),
        ), site="pfam", node_cost=0.2),
        Relation("PfamSeq", (
            Attribute("seq_acc", is_key=True),
            Attribute("species", is_text=True),
            Attribute("relevance", is_score=True),
        ), site="pfam", node_cost=0.3),
        Relation("PfamReg", (
            # Family membership regions: which sequences belong to which
            # family.  Scored by alignment quality.
            Attribute("pfam_acc", is_key=True),
            Attribute("seq_acc", is_key=True),
            Attribute("score", is_score=True),
        ), site="pfam", node_cost=0.4),
        Relation("PfamLit", (
            # Literature references: no score attribute of its own, so
            # it becomes a probe-only source.
            Attribute("pfam_acc", is_key=True),
            Attribute("pub_id", is_key=True),
        ), site="pfam", node_cost=0.5),
        Relation("Publication", (
            Attribute("pub_id", is_key=True),
            Attribute("title", is_text=True),
            Attribute("recency", is_score=True),
        ), site="pfam", node_cost=0.3),
        Relation("InterProEntry", (
            Attribute("entry_acc", is_key=True),
            Attribute("name", is_text=True),
            Attribute("relevance", is_score=True),
        ), site="interpro", node_cost=0.2),
        Relation("Pfam2InterPro", (
            # The mapping table the paper highlights: relates Pfam
            # families to InterPro entries, across sites.
            Attribute("pfam_acc", is_key=True),
            Attribute("entry_acc", is_key=True),
            Attribute("score", is_score=True),
        ), site="interpro", node_cost=0.4),
    ]
    edges = [
        SchemaEdge("PfamFamily", "pfam_acc", "PfamReg", "pfam_acc",
                   cost=0.4, kind="fk"),
        SchemaEdge("PfamReg", "seq_acc", "PfamSeq", "seq_acc",
                   cost=0.4, kind="fk"),
        SchemaEdge("PfamFamily", "pfam_acc", "PfamLit", "pfam_acc",
                   cost=0.5, kind="fk"),
        SchemaEdge("PfamLit", "pub_id", "Publication", "pub_id",
                   cost=0.5, kind="fk"),
        SchemaEdge("PfamFamily", "pfam_acc", "Pfam2InterPro", "pfam_acc",
                   cost=0.5, kind="link"),
        SchemaEdge("Pfam2InterPro", "entry_acc", "InterProEntry",
                   "entry_acc", cost=0.5, kind="link"),
    ]
    return Schema(relations, edges)


def biodb_cardinalities(config: BioDBConfig) -> dict[str, int]:
    return {
        "PfamFamily": config.n_families,
        "PfamSeq": config.n_sequences,
        "PfamReg": config.n_memberships,
        "PfamLit": config.n_entry_pubs,
        "Publication": config.n_publications,
        "InterProEntry": config.n_entries,
        "Pfam2InterPro": config.n_mappings,
    }


def biodb_federation(config: BioDBConfig | None = None) -> Federation:
    """Build and populate the Pfam/InterPro-like federation."""
    config = config or BioDBConfig()
    schema = biodb_schema()
    federation = Federation(schema)
    generator = SyntheticDataGenerator(
        schema, seed=config.seed, domain_factor=config.domain_factor,
        words_per_text=(3, 8),
    )
    generator.populate(federation, biodb_cardinalities(config))
    return federation
