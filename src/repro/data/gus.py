"""A GUS-like synthetic federation.

The paper's synthetic experiments run over the Genomics Unified Schema
(GUS, 358 relations) populated with 20k-100k random tuples per relation
across 4 simulated database instances.  We rebuild the same *class* of
schema programmatically so that experiments can run at laptop scale
while a full-scale 358-relation configuration remains one call away.

Topology, mirroring GUS and the paper's Figure 1:

* **hub** tables -- core entities (proteins, genes, terms, ...) with a
  primary key, a text name (keyword-matchable), and an IR-style
  ``relevance`` score attribute;
* **link** tables -- record-linking relationship tables between hubs,
  each with foreign keys to both endpoints and a ``score`` similarity
  attribute (the paper extends every synonym/relationship table this
  way);
* **synonym** tables -- self-links on a hub (like ``Term_Syn``), scored;
* **satellite** tables -- per-hub detail tables with *no score
  attribute*, which is exactly what exercises the Section 5.1.1
  "only stream relations that have scoring attributes" heuristic: these
  become probe-only random-access sources.

Hubs are wired by preferential attachment so a few hubs become the
highly-shared "core concept" relations (proteins!) that many queries
touch, driving the sharing opportunities the paper exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import make_rng
from repro.data.database import Federation
from repro.data.generator import SyntheticDataGenerator
from repro.data.schema import Attribute, Relation, Schema, SchemaEdge

#: Site names echoing the bioinformatics sources of Example 1.
GUS_SITES: tuple[str, ...] = (
    "uniprot", "interpro", "geneontology", "ncbi", "omim", "prosite",
)


@dataclass(frozen=True)
class GUSConfig:
    """Shape parameters of the generated schema and instance.

    The defaults give a ~60-relation schema with a few hundred tuples
    per relation: large enough to show every effect in the paper's
    figures, small enough to regenerate them in seconds.  ``full()``
    returns the paper-scale 358-relation layout.
    """

    n_hubs: int = 12
    links_per_extra_hub: int = 2
    synonym_every: int = 3
    satellites_per_hub: int = 2
    n_sites: int = 6
    min_rows: int = 150
    max_rows: int = 900
    domain_factor: float = 0.25
    seed: int = 11

    @classmethod
    def full(cls, seed: int = 11) -> "GUSConfig":
        """Paper-scale schema: 360 relations (GUS proper has 358; see
        :func:`count_relations` -- the topology family does not hit 358
        exactly, and two extra satellite tables are immaterial)."""
        return cls(n_hubs=68, links_per_extra_hub=2, synonym_every=3,
                   satellites_per_hub=2, n_sites=6,
                   min_rows=150, max_rows=900, seed=seed)

    @classmethod
    def tiny(cls, seed: int = 11) -> "GUSConfig":
        """A minimal schema for fast unit tests."""
        return cls(n_hubs=4, links_per_extra_hub=1, synonym_every=2,
                   satellites_per_hub=1, n_sites=2,
                   min_rows=60, max_rows=200, seed=seed)


def count_relations(config: GUSConfig) -> int:
    """Number of relations the schema builder will emit for ``config``."""
    hubs = config.n_hubs
    links = sum(
        min(config.links_per_extra_hub, i) for i in range(1, hubs)
    )
    synonyms = len(range(0, hubs, config.synonym_every))
    satellites = hubs * config.satellites_per_hub
    return hubs + links + synonyms + satellites


def gus_schema(config: GUSConfig | None = None) -> Schema:
    """Build the GUS-like schema graph for ``config``."""
    config = config or GUSConfig()
    rng = make_rng(config.seed, "gus-schema")
    sites = GUS_SITES[: config.n_sites]
    relations: list[Relation] = []
    edges: list[SchemaEdge] = []

    hub_names = [f"Hub{i:02d}" for i in range(config.n_hubs)]
    for i, name in enumerate(hub_names):
        relations.append(Relation(
            name,
            (
                Attribute("id", is_key=True),
                Attribute("name", is_text=True),
                Attribute("relevance", is_score=True),
            ),
            site=sites[i % len(sites)],
            node_cost=round(0.1 + 0.5 * rng.random(), 3),
        ))

    # Preferential attachment: hub i links to ``links_per_extra_hub``
    # earlier hubs, biased toward low indices, so Hub00/Hub01 become the
    # shared core-concept relations.
    degree = [1] * config.n_hubs
    for i in range(1, config.n_hubs):
        n_links = min(config.links_per_extra_hub, i)
        targets: set[int] = set()
        while len(targets) < n_links:
            total = sum(degree[:i])
            pick = rng.randrange(total)
            acc = 0
            for j in range(i):
                acc += degree[j]
                if pick < acc:
                    targets.add(j)
                    break
        for j in sorted(targets):
            link_name = f"Lnk{j:02d}_{i:02d}"
            site = sites[j % len(sites)]
            relations.append(Relation(
                link_name,
                (
                    Attribute("left_ref", is_key=True),
                    Attribute("right_ref", is_key=True),
                    Attribute("score", is_score=True),
                ),
                site=site,
                node_cost=round(0.2 + 0.6 * rng.random(), 3),
            ))
            cost = round(0.3 + 0.5 * rng.random(), 3)
            edges.append(SchemaEdge(hub_names[j], "id", link_name,
                                    "left_ref", cost=cost, kind="link"))
            edges.append(SchemaEdge(link_name, "right_ref", hub_names[i],
                                    "id", cost=cost, kind="link"))
            degree[i] += 1
            degree[j] += 1

    for i in range(0, config.n_hubs, config.synonym_every):
        syn_name = f"Syn{i:02d}"
        relations.append(Relation(
            syn_name,
            (
                Attribute("id1", is_key=True),
                Attribute("id2", is_key=True),
                Attribute("score", is_score=True),
            ),
            site=sites[i % len(sites)],
            node_cost=round(0.3 + 0.5 * rng.random(), 3),
        ))
        cost = round(0.4 + 0.4 * rng.random(), 3)
        edges.append(SchemaEdge(hub_names[i], "id", syn_name, "id1",
                                cost=cost, kind="syn"))
        edges.append(SchemaEdge(syn_name, "id2", hub_names[i], "id",
                                cost=cost, kind="syn"))

    for i, hub in enumerate(hub_names):
        for s in range(config.satellites_per_hub):
            sat_name = f"Sat{i:02d}_{s}"
            relations.append(Relation(
                sat_name,
                (
                    Attribute("ref", is_key=True),
                    Attribute("detail", is_text=True),
                    Attribute("payload"),
                ),
                site=sites[i % len(sites)],
                node_cost=round(0.3 + 0.6 * rng.random(), 3),
            ))
            edges.append(SchemaEdge(hub, "id", sat_name, "ref",
                                    cost=round(0.4 + 0.5 * rng.random(), 3),
                                    kind="fk"))
    return Schema(relations, edges)


def gus_cardinalities(schema: Schema, config: GUSConfig,
                      instance: int = 0) -> dict[str, int]:
    """Zipf-skewed row counts for one simulated database instance.

    The paper creates four instances with 20k-100k tuples apiece; we
    draw each relation's count uniformly from
    ``[min_rows, max_rows]`` with the instance index perturbing the
    seed, so the four instances differ as they do in the paper.
    """
    rng = make_rng(config.seed, "gus-cardinality", instance)
    return {
        name: rng.randint(config.min_rows, config.max_rows)
        for name in schema.relation_names
    }


def gus_federation(config: GUSConfig | None = None,
                   instance: int = 0) -> Federation:
    """Build and populate one GUS-like database instance."""
    config = config or GUSConfig()
    schema = gus_schema(config)
    federation = Federation(schema)
    generator = SyntheticDataGenerator(
        schema,
        seed=config.seed * 1000 + instance,
        domain_factor=config.domain_factor,
    )
    generator.populate(federation, gus_cardinalities(schema, config, instance))
    return federation
