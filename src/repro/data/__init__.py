"""Data substrate: schemas, simulated sites, sources, generators."""

from repro.data.biodb import BioDBConfig, biodb_federation, biodb_schema
from repro.data.database import Database, Federation, RelationStats
from repro.data.figure1 import figure1_federation, figure1_schema
from repro.data.generator import (
    BIO_VOCABULARY,
    SyntheticDataGenerator,
    compute_key_domains,
)
from repro.data.gus import GUSConfig, count_relations, gus_federation, gus_schema
from repro.data.inverted import InvertedIndex, KeywordMatch
from repro.data.rows import Row, STuple
from repro.data.schema import Attribute, Relation, Schema, SchemaEdge, link_table
from repro.data.sources import (
    EXHAUSTED,
    ListSource,
    RandomAccessSource,
    StreamingSource,
)

__all__ = [
    "BIO_VOCABULARY",
    "Attribute",
    "BioDBConfig",
    "Database",
    "EXHAUSTED",
    "Federation",
    "GUSConfig",
    "InvertedIndex",
    "KeywordMatch",
    "ListSource",
    "RandomAccessSource",
    "Relation",
    "RelationStats",
    "Row",
    "STuple",
    "Schema",
    "SchemaEdge",
    "StreamingSource",
    "SyntheticDataGenerator",
    "biodb_federation",
    "biodb_schema",
    "compute_key_domains",
    "count_relations",
    "figure1_federation",
    "figure1_schema",
    "gus_federation",
    "gus_schema",
    "link_table",
]
