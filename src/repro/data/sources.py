"""Streaming and random-access sources.

Section 3 of the paper distinguishes two ways the middleware reaches
remote data:

* **Streaming sources** return the results of a (possibly pushed-down)
  subquery in nonincreasing score order, one tuple per request, each
  read paying a network delay.  :class:`StreamingSource` wraps a site
  database's materialized SPJ result and meters it out, charging the
  virtual clock and metrics for every read, and exposing the *bound* --
  the score of the next unread tuple -- that threshold maintenance
  requires.

* **Random-access sources** are probed with join-key values and return
  matching tuples (the 2-way semijoin style of [25]).
  :class:`RandomAccessSource` wraps indexed lookups, charges probe
  delays, and caches probe results (the paper: "we cache tuples from
  random probes", Section 7.1), so repeated probes with the same key
  are free after the first.

Both source kinds are *shared objects*: several conjunctive queries may
read the same stream through split operators, and the QS manager tracks
each stream's read position across epochs for reuse (Section 6).
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence
from typing import Any

from repro.common.clock import VirtualClock
from repro.common.config import DelayModel
from repro.common.errors import DataError
from repro.common.rng import poisson_delay
from repro.data.database import Database
from repro.data.rows import Row, STuple
from repro.plan.expressions import SPJ
from repro.obs.records import Metrics

#: Score bound reported by an exhausted stream.
EXHAUSTED = -math.inf


class StreamingSource:
    """A score-ordered stream of STuples for one input expression.

    The underlying site executes the expression once (that work happens
    "at the source" and is not charged to the middleware clock); the
    middleware then pulls tuples one at a time, each read advancing the
    virtual clock by a Poisson network delay.

    The read *position* survives across query batches: when later
    queries reuse this input (Section 6.1), the optimizer asks
    :attr:`tuples_read` to discount already-paid reads, and the ATC
    resumes from the current position rather than re-reading.
    """

    def __init__(self, name: str, expr: SPJ, database: Database,
                 clock: VirtualClock, metrics: Metrics,
                 delays: DelayModel, rng: random.Random) -> None:
        self.name = name
        self.expr = expr
        self.database = database
        self.clock = clock
        self.metrics = metrics
        self.delays = delays
        self._rng = rng
        #: Produced prefix of the site's ranked result, grown on demand
        #: by the lazy producer.  The site used to execute and sort the
        #: *entire* join on first touch; a top-k stream typically reads
        #: a tiny prefix, so production is now incremental (the
        #: producer's output order is bit-identical to the full sort).
        self._results: list[STuple] = []
        self._producer = None
        self._producer_done = False
        self._position = 0

    # -- lazy materialization ------------------------------------------------

    def _ensure_produced(self, count: int) -> list[STuple]:
        """Grow the produced prefix to ``count`` tuples (or exhaustion)."""
        results = self._results
        if self._producer_done or len(results) >= count:
            return results
        if self._producer is None:
            self._producer = self.database.ranked_producer(self.expr)
        produce = self._producer.produce
        while len(results) < count:
            tup = produce()
            if tup is None:
                self._producer_done = True
                break
            results.append(tup)
        return results

    # -- streaming interface -------------------------------------------------

    @property
    def tuples_read(self) -> int:
        return self._position

    @property
    def exhausted(self) -> bool:
        return self._position >= len(self._ensure_produced(self._position + 1))

    def bound(self) -> float:
        """Upper bound on the intrinsic score of any *unread* tuple.

        Equals the next tuple's intrinsic score (streams are sorted), or
        ``-inf`` once exhausted.  Before the first read this is the
        stream's maximum possible score.
        """
        results = self._ensure_produced(self._position + 1)
        if self._position >= len(results):
            return EXHAUSTED
        return results[self._position].intrinsic

    def read(self) -> STuple | None:
        """Pull the next tuple, paying the network delay; None when done."""
        results = self._ensure_produced(self._position + 1)
        if self._position >= len(results):
            return None
        tup = results[self._position]
        self._position += 1
        delay = self._delay(self.delays.stream_read_mean)
        self.clock.advance(delay)
        self.metrics.record_stream_read(self.name, delay)
        return tup

    def peek_all_read(self) -> list[STuple]:
        """The prefix already consumed (used by state-recovery tests)."""
        return list(self._results[: self._position])

    def remaining(self) -> int:
        """Unread tuples left; forces full production (test/debug use)."""
        import sys
        return len(self._ensure_produced(sys.maxsize)) - self._position

    def reset(self) -> None:
        """Rewind to the start of the stream.

        Used when the QS manager evicts this input's state: the cheap
        in-memory prefix is gone, so a future consumer must re-pay the
        network cost of streaming from the site again.
        """
        self._position = 0

    def _delay(self, mean: float) -> float:
        if self.delays.deterministic:
            return mean
        return poisson_delay(self._rng, mean)

    def rebind(self, clock: VirtualClock, metrics: Metrics) -> None:
        """Point this source at a different ATC's clock and metrics.

        Needed when the QS manager moves a cached stream into a new plan
        graph (e.g. after clustering changes which graph owns it).
        """
        self.clock = clock
        self.metrics = metrics

    def __repr__(self) -> str:
        return (f"StreamingSource({self.name!r}, read={self._position}, "
                f"bound={self.bound():.4f})")


class RandomAccessSource:
    """A probe-able remote source for one relation (or subexpression).

    Probes are keyed by ``(attr, value)``; results are cached so the
    network delay is paid once per distinct key.  Selections (e.g. a
    keyword match on the probed relation) are applied at the remote
    site, mirroring a pushed-down predicate.
    """

    def __init__(self, name: str, relation: str, database: Database,
                 clock: VirtualClock, metrics: Metrics,
                 delays: DelayModel, rng: random.Random,
                 selections: Sequence[Any] = (),
                 use_cache: bool = True) -> None:
        self.name = name
        self.relation = relation
        self.database = database
        self.clock = clock
        self.metrics = metrics
        self.delays = delays
        self._rng = rng
        self.selections = tuple(selections)
        self.use_cache = use_cache
        self._cache: dict[tuple[str, Any], list[Row]] = {}
        self._cached_rows = 0

    def probe(self, attr: str, value: Any) -> list[Row]:
        """All rows with ``attr == value`` passing this source's selections."""
        key = (attr, value)
        cached = self.use_cache and key in self._cache
        if cached:
            rows = self._cache[key]
            self.metrics.record_probe(0.0, cached=True)
        else:
            rows = self.database.probe(self.relation, attr, value,
                                       self.selections)
            # With caching disabled the same key re-probes and
            # overwrites its slot; the gauge must track residency, not
            # traffic.
            previous = self._cache.get(key)
            if previous is not None:
                self._cached_rows -= len(previous)
            self._cache[key] = rows
            self._cached_rows += len(rows)
            delay = self._delay(self.delays.random_probe_mean)
            self.clock.advance(delay)
            self.metrics.record_probe(delay, cached=False)
        return rows

    def probe_stuples(self, alias: str, attr: str, value: Any) -> list[STuple]:
        """Probe and wrap results as single-atom STuples under ``alias``."""
        out = []
        for row in self.probe(attr, value):
            contribution = self.database.contribution(row.relation, row.tid)
            out.append(STuple.single(alias, row, contribution))
        return out

    def max_contribution(self) -> float:
        """Largest score contribution any probe result can have."""
        return self.database.stats(self.relation).max_contribution

    @property
    def cache_size(self) -> int:
        """Cached row count, maintained incrementally (this gauge feeds
        every admission check, so it must not rescan the cache)."""
        return self._cached_rows

    def clear_cache(self) -> int:
        """Drop cached probe results; returns tuples freed (eviction)."""
        freed = self._cached_rows
        self._cache.clear()
        self._cached_rows = 0
        return freed

    def rebind(self, clock: VirtualClock, metrics: Metrics) -> None:
        self.clock = clock
        self.metrics = metrics

    def _delay(self, mean: float) -> float:
        if self.delays.deterministic:
            return mean
        return poisson_delay(self._rng, mean)

    def __repr__(self) -> str:
        return f"RandomAccessSource({self.name!r} on {self.relation!r})"


class ListSource:
    """A streaming source backed by an in-memory list of STuples.

    Used for two purposes: (a) the *recovery queries* of Section 6.2,
    whose streaming input is the linked list of tuples a hash table
    accumulated before the current epoch -- already in arrival (= score)
    order and already paid for, so reads are free; and (b) unit tests.
    """

    def __init__(self, name: str, tuples: Sequence[STuple],
                 charge_free: bool = True,
                 clock: VirtualClock | None = None,
                 metrics: Metrics | None = None,
                 delays: DelayModel | None = None,
                 rng: random.Random | None = None) -> None:
        self.name = name
        self._tuples = list(tuples)
        for earlier, later in zip(self._tuples, self._tuples[1:]):
            if later.intrinsic > earlier.intrinsic + 1e-12:
                raise DataError(
                    f"ListSource {name!r} requires nonincreasing scores; "
                    f"got {earlier.intrinsic} before {later.intrinsic}"
                )
        self._position = 0
        self.charge_free = charge_free
        self.clock = clock
        self.metrics = metrics
        self.delays = delays
        self._rng = rng

    @property
    def tuples_read(self) -> int:
        return self._position

    @property
    def exhausted(self) -> bool:
        return self._position >= len(self._tuples)

    def bound(self) -> float:
        if self.exhausted:
            return EXHAUSTED
        return self._tuples[self._position].intrinsic

    def read(self) -> STuple | None:
        if self.exhausted:
            return None
        tup = self._tuples[self._position]
        self._position += 1
        if not self.charge_free and self.clock is not None:
            mean = self.delays.stream_read_mean if self.delays else 0.0
            delay = mean if (self.delays and self.delays.deterministic) \
                else poisson_delay(
                    # repro: allow[rng-discipline] -- a fresh Random(0)
                    # per read is the pinned legacy fallback delay
                    # stream (constant first draw) for sources built
                    # without an rng; real sources pass a make_rng
                    # stream and never reach it
                    self._rng or random.Random(0), mean)
            self.clock.advance(delay)
            if self.metrics is not None:
                self.metrics.record_stream_read(self.name, delay)
        elif self.metrics is not None:
            # Free replays of already-paid-for state are *reuse*, not
            # input consumption: they must not count toward the
            # Figure 10 work measure.
            self.metrics.tuples_reused += 1
        return tup

    def remaining(self) -> int:
        return len(self._tuples) - self._position

    def rebind(self, clock: VirtualClock, metrics: Metrics) -> None:
        self.clock = clock
        self.metrics = metrics

    def __repr__(self) -> str:
        return f"ListSource({self.name!r}, read={self._position})"
