"""Reference (oracle) evaluation: exhaustive, unshared, unranked.

This module computes query answers the slow-but-obviously-correct way:
full hash joins over complete relations, ignoring sites, streams,
thresholds, and sharing.  The test suite and the experiment harness use
it to verify that the pipelined, shared, threshold-driven engine
returns exactly the top-k answers it should.

Nothing here is part of the paper's system -- it is the ground truth
the system is measured against.
"""

from __future__ import annotations

from repro.data.database import Federation
from repro.data.rows import STuple
from repro.keyword.queries import ConjunctiveQuery, UserQuery
from repro.plan.expressions import SPJ


def evaluate_spj(federation: Federation, expr: SPJ) -> list[STuple]:
    """All result tuples of an SPJ expression, joined across sites."""
    candidates: dict[str, list[STuple]] = {}
    for atom in expr.atoms:
        database = federation.database_for(atom.relation)
        rows = database.scan_sorted(atom.relation,
                                    expr.selections_on(atom.alias))
        candidates[atom.alias] = [
            STuple.single(atom.alias, row,
                          database.contribution(atom.relation, row.tid))
            for row in rows
        ]
    order = _join_order(expr, candidates)
    partials = candidates[order[0]]
    bound = {order[0]}
    for alias in order[1:]:
        preds = [p for p in expr.joins_on(alias) if p.other(alias) in bound]
        index: dict[tuple, list[STuple]] = {}
        for tup in candidates[alias]:
            key = tuple(
                tup.value(alias, p.side_for(alias)[0]) for p in preds
            )
            index.setdefault(key, []).append(tup)
        grown = []
        for partial in partials:
            key = tuple(
                partial.value(p.other(alias),
                              p.side_for(p.other(alias))[0])
                for p in preds
            )
            for match in index.get(key, ()):
                grown.append(partial.merge(match))
        partials = grown
        bound.add(alias)
        if not partials:
            return []
    return partials


def _join_order(expr: SPJ, candidates: dict[str, list[STuple]]) -> list[str]:
    remaining = set(expr.aliases)
    start = min(remaining, key=lambda a: (len(candidates[a]), a))
    order = [start]
    remaining.remove(start)
    while remaining:
        frontier = [
            a for a in remaining
            if any(p.other(a) in order for p in expr.joins_on(a))
        ]
        if not frontier:
            # Disconnected expression: fall back to cross products via
            # an arbitrary next alias (reference only; never fast).
            frontier = sorted(remaining)
        nxt = min(frontier, key=lambda a: (len(candidates[a]), a))
        order.append(nxt)
        remaining.remove(nxt)
    return order


def evaluate_cq(federation: Federation, cq: ConjunctiveQuery
                ) -> list[tuple[float, STuple]]:
    """All scored results of one conjunctive query, best first.

    Sorting is by score only; Python's stable sort plus the
    deterministic join order make the outcome reproducible, and
    comparisons against the engine use score vectors (tied answers are
    interchangeable).
    """
    scored = [
        (cq.score.score(tup), tup)
        for tup in evaluate_spj(federation, cq.expr)
    ]
    scored.sort(key=lambda pair: -pair[0])
    return scored


def brute_force_topk(federation: Federation, uq: UserQuery
                     ) -> list[tuple[float, str, STuple]]:
    """The true top-k answers of a user query: ``(score, cq_id, tuple)``.

    Results across CQs are pooled and globally sorted by score (stable,
    hence deterministic); tied answers are interchangeable, so compare
    score vectors, not provenance.
    """
    pool: list[tuple[float, str, STuple]] = []
    for cq in uq.cqs:
        for score, tup in evaluate_cq(federation, cq):
            pool.append((score, cq.cq_id, tup))
    pool.sort(key=lambda item: -item[0])
    return pool[: uq.k]


def topk_scores(federation: Federation, uq: UserQuery) -> list[float]:
    """Just the true top-k score vector (the usual comparison target:
    score vectors must match even when ties permute the answers)."""
    return [score for score, _cq, _tup in brute_force_topk(federation, uq)]
