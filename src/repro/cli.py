"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``search <keywords...>`` -- run one keyword query over the Figure 1
  federation and print the ranked answers;
* ``experiment <name>`` -- run one experiment driver (``table4``,
  ``figure7`` .. ``figure12``, ``ablations``) at quick or paper scale;
* ``workload`` -- execute the full synthetic workload under a chosen
  sharing mode and print the per-query report.
"""

from __future__ import annotations

import argparse
import sys

from repro.common.config import ExecutionConfig, SharingMode

EXPERIMENTS = (
    "table4", "figure7", "figure8", "figure9", "figure10", "figure11",
    "figure12", "ablations",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'Sharing Work in Keyword Search "
                     "over Databases' (SIGMOD 2011)"),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    search = sub.add_parser(
        "search", help="keyword search over the Figure 1 federation")
    search.add_argument("keywords", nargs="+",
                        help="keywords (quote multi-word phrases)")
    search.add_argument("-k", type=int, default=10, help="top-k (default 10)")
    search.add_argument("--mode", default="ATC-FULL",
                        choices=[str(m) for m in SharingMode])

    experiment = sub.add_parser(
        "experiment", help="run one paper experiment")
    experiment.add_argument("name", choices=EXPERIMENTS)
    experiment.add_argument("--scale", default="quick",
                            choices=("quick", "paper"))

    workload = sub.add_parser(
        "workload", help="run the 15-query synthetic workload")
    workload.add_argument("--mode", default="ATC-CL",
                          choices=[str(m) for m in SharingMode])
    return parser


def _mode_from_name(name: str) -> SharingMode:
    for mode in SharingMode:
        if str(mode) == name:
            return mode
    raise ValueError(f"unknown mode {name!r}")


def cmd_search(args: argparse.Namespace) -> int:
    from repro.atc.engine import QSystemEngine
    from repro.data.figure1 import figure1_federation
    from repro.keyword.queries import KeywordQuery

    federation = figure1_federation()
    config = ExecutionConfig(mode=_mode_from_name(args.mode), k=args.k)
    engine = QSystemEngine(federation, config)
    uq = engine.submit(KeywordQuery("Q", tuple(args.keywords), k=args.k))
    print(f"{len(uq.cqs)} candidate networks; executing...")
    report = engine.run()
    for rank, answer in enumerate(report.answers["Q"], start=1):
        rows = ", ".join(
            f"{rel}#{tid}" for _a, rel, tid in sorted(answer.provenance))
        print(f"{rank:3d}. {answer.score:.4f}  {answer.cq_id}  [{rows}]")
    record = report.metrics.uq_records["Q"]
    print(f"({record.cqs_executed}/{record.cqs_total} CQs executed, "
          f"{report.metrics.total_input_tuples} input tuples, "
          f"{record.latency:.2f} virtual s)")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    from repro.experiments.harness import paper_scale, quick_scale

    module = importlib.import_module(f"repro.experiments.{args.name}")
    scale = quick_scale() if args.scale == "quick" else paper_scale()
    result = module.run(scale)
    print(result.table().render())
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    from repro.experiments.harness import (
        quick_scale,
        run_workload,
        synthetic_bundle,
    )

    scale = quick_scale()
    bundle = synthetic_bundle(scale, instance=0)
    mode = _mode_from_name(args.mode)
    report = run_workload(bundle, scale.with_mode(mode))
    print(f"mode {mode}: {len(report.answers)} user queries")
    for uq_id, seconds in report.processing_times().items():
        record = report.metrics.uq_records[uq_id]
        print(f"  {uq_id:6s} {seconds:8.3f} virtual s "
              f"({record.cqs_executed} CQs, "
              f"{record.results_returned} answers)")
    metrics = report.metrics
    print(f"work: {metrics.stream_tuples_read} stream reads + "
          f"{metrics.probes_performed} probes "
          f"({metrics.probe_cache_hits} cached)")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "search": cmd_search,
        "experiment": cmd_experiment,
        "workload": cmd_workload,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
