"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``search <keywords...>`` -- run one keyword query over the Figure 1
  federation and print the ranked answers;
* ``experiment <name>`` -- run one experiment driver (``table4``,
  ``figure7`` .. ``figure12``, ``ablations``) at quick or paper scale;
* ``workload`` -- execute the full synthetic workload under a chosen
  sharing mode and print the per-query report;
* ``serve`` -- run the online query service under an open-loop
  Poisson/Zipf load and print tail latencies, throughput, and the
  answer-cache hit rate; ``--trace-dir`` / ``--metrics-out`` export
  per-query span trees (JSONL) and the metrics registry (Prometheus
  text or JSONL).  With ``--http`` the service listens for real
  clients instead of replaying a load: ``repro serve --http
  [--host H] [--port P] [--clock wall|virtual]`` starts the asyncio
  HTTP/SSE front end (``POST /query``, ``GET /query/<id>/events``
  streams answers as Server-Sent Events, ``POST /query/<id>/cancel``,
  ``/healthz``, ``/metrics``; ``POST /admin/shutdown`` stops it and
  flushes the trace/metrics artifacts).  The wall clock is the
  ``--http`` default -- deadlines and batch windows run on real time,
  driven by a ``--tick``-second housekeeping loop; ``--clock
  virtual`` serves deterministically for differential testing;
* ``explain <keywords...>`` -- trace one query end to end and print
  its span tree with a per-stage virtual/wall breakdown;
* ``lint [paths...]`` -- run the AST-based invariant checker
  (clock/rng discipline, wire hygiene, determinism hazards,
  observability drift) over the tree; exit 0 clean, 1 on violations.
"""

from __future__ import annotations

import argparse
import sys

from repro.common.config import ExecutionConfig, SharingMode

EXPERIMENTS = (
    "table4", "figure7", "figure8", "figure9", "figure10", "figure11",
    "figure12", "ablations",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'Sharing Work in Keyword Search "
                     "over Databases' (SIGMOD 2011)"),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    search = sub.add_parser(
        "search", help="keyword search over the Figure 1 federation")
    search.add_argument("keywords", nargs="+",
                        help="keywords (quote multi-word phrases)")
    search.add_argument("-k", type=int, default=10, help="top-k (default 10)")
    search.add_argument("--mode", default="ATC-FULL",
                        choices=[str(m) for m in SharingMode])

    experiment = sub.add_parser(
        "experiment", help="run one paper experiment")
    experiment.add_argument("name", choices=EXPERIMENTS)
    experiment.add_argument("--scale", default="quick",
                            choices=("quick", "paper"))

    workload = sub.add_parser(
        "workload", help="run the 15-query synthetic workload")
    workload.add_argument("--mode", default="ATC-CL",
                          choices=[str(m) for m in SharingMode])

    serve = sub.add_parser(
        "serve",
        help="run the online service under open-loop Poisson/Zipf load")
    serve.add_argument("--queries", type=int, default=200,
                       help="arrivals to generate (default 200)")
    serve.add_argument("--mode", default="ATC-FULL",
                       choices=[str(m) for m in SharingMode])
    serve.add_argument("--corpus", default="figure1",
                       choices=("figure1", "gus"),
                       help="federation to serve (default figure1)")
    serve.add_argument("--rate", type=float, default=2.0,
                       help="mean arrival rate, queries/virtual s (default 2)")
    serve.add_argument("-k", type=int, default=10, help="top-k (default 10)")
    serve.add_argument("--templates", type=int, default=12,
                       help="distinct query templates (default 12)")
    serve.add_argument("--theta", type=float, default=1.0,
                       help="Zipf skew of template popularity (default 1.0)")
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--batch-window", type=float, default=2.0,
                       help="batcher collection window, virtual s (default 2)")
    serve.add_argument("--cache-ttl", type=float, default=300.0,
                       help="answer-cache TTL, virtual s (default 300)")
    serve.add_argument("--max-in-flight", type=int, default=64,
                       help="admission budget on concurrent queries "
                            "(default 64)")
    serve.add_argument("--policy", default="reject",
                       choices=("reject", "defer"),
                       help="what to do over budget (default reject)")
    serve.add_argument("--deadline", type=float, default=None,
                       help="per-query deadline, virtual seconds after "
                            "arrival; overdue queries are retired as "
                            "expired with their answers-so-far "
                            "(default: none)")
    serve.add_argument("--shards", type=int, default=1,
                       help="engine workers behind the router; >1 serves "
                            "through the sharded tier (default 1)")
    serve.add_argument("--workers", default="inproc",
                       choices=["inproc", "process"],
                       help="shard worker transport when --shards > 1: "
                            "'inproc' runs every worker in this process "
                            "(deterministic oracle), 'process' spawns one "
                            "OS process per shard for true parallelism "
                            "(default inproc)")
    serve.add_argument("--routing", default="cluster",
                       choices=("roundrobin", "hash", "cluster"),
                       help="shard routing policy when --shards > 1 "
                            "(default cluster-affinity)")
    serve.add_argument("--no-plan-cache", action="store_true",
                       help="disable the plan repository: every batch "
                            "pays full candidate enumeration, best-plan "
                            "search, and factorization (debugging escape "
                            "hatch; also useful when templates never "
                            "repeat)")
    serve.add_argument("--cluster-jaccard", type=float, default=0.7,
                       help="Jaccard threshold for cluster formation "
                            "(ATC-CL graphs and the cluster router); "
                            "looser thresholds merge everything into one "
                            "over-shared cluster on small corpora "
                            "(default 0.7)")
    serve.add_argument("--trace-dir", default=None, metavar="DIR",
                       help="record a span tree per query and write them "
                            "as JSONL under DIR after the run (tracing is "
                            "off, and zero-overhead, without this flag)")
    serve.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="export the metrics registry after the run: "
                            "Prometheus text when FILE ends in .prom/.txt, "
                            "JSONL otherwise")
    serve.add_argument("--http", action="store_true",
                       help="serve real clients over HTTP/SSE instead of "
                            "replaying a generated load (POST /query, "
                            "GET /query/<id>/events, POST /admin/shutdown "
                            "to stop)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="HTTP bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8028,
                       help="HTTP port; 0 picks an ephemeral one "
                            "(default 8028)")
    serve.add_argument("--clock", default=None,
                       choices=("virtual", "wall"),
                       help="time source: wall (real time; the --http "
                            "default) or virtual (deterministic; the "
                            "load-replay default)")
    serve.add_argument("--tick", type=float, default=0.05,
                       help="wall-mode housekeeping period in real "
                            "seconds: batch windows and deadlines are "
                            "driven this often with no client attached "
                            "(default 0.05; ignored on the virtual clock)")

    explain = sub.add_parser(
        "explain",
        help="trace one keyword query end to end and print its span "
             "tree with per-stage virtual/wall timings")
    explain.add_argument("keywords", nargs="+",
                         help="keywords (quote multi-word phrases)")
    explain.add_argument("-k", type=int, default=10,
                         help="top-k (default 10)")
    explain.add_argument("--mode", default="ATC-FULL",
                         choices=[str(m) for m in SharingMode])
    explain.add_argument("--trace-dir", default=None, metavar="DIR",
                         help="also dump the trace as JSONL under DIR")

    from repro.lint.cli import add_lint_arguments
    lint = sub.add_parser(
        "lint",
        help="check the determinism/clock/wire/observability contracts "
             "(AST-based; see --list-rules)")
    add_lint_arguments(lint)
    return parser


def _mode_from_name(name: str) -> SharingMode:
    for mode in SharingMode:
        if str(mode) == name:
            return mode
    raise ValueError(f"unknown mode {name!r}")


def cmd_search(args: argparse.Namespace) -> int:
    from repro.atc.engine import QSystemEngine
    from repro.common.errors import QueryError
    from repro.data.figure1 import figure1_federation
    from repro.keyword.queries import KeywordQuery

    federation = figure1_federation()
    config = ExecutionConfig(mode=_mode_from_name(args.mode), k=args.k)
    engine = QSystemEngine(federation, config)
    try:
        uq = engine.submit(KeywordQuery("Q", tuple(args.keywords), k=args.k))
    except QueryError:
        print(f"no results: no relation matches {args.keywords}")
        return 0
    if not uq.cqs:
        print(f"no results: no candidate network connects {args.keywords}")
        return 0
    print(f"{len(uq.cqs)} candidate networks; executing...")
    report = engine.run()
    answers = report.answers.get("Q", [])
    if not answers:
        print("no results: every candidate network came up empty")
        return 0
    for rank, answer in enumerate(answers, start=1):
        rows = ", ".join(
            f"{rel}#{tid}" for _a, rel, tid in sorted(answer.provenance))
        print(f"{rank:3d}. {answer.score:.4f}  {answer.cq_id}  [{rows}]")
    record = report.metrics.uq_records["Q"]
    print(f"({record.cqs_executed}/{record.cqs_total} CQs executed, "
          f"{report.metrics.total_input_tuples} input tuples, "
          f"{record.latency:.2f} virtual s)")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    from repro.experiments.harness import paper_scale, quick_scale

    module = importlib.import_module(f"repro.experiments.{args.name}")
    scale = quick_scale() if args.scale == "quick" else paper_scale()
    result = module.run(scale)
    print(result.table().render())
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    from repro.experiments.harness import (
        quick_scale,
        run_workload,
        synthetic_bundle,
    )

    scale = quick_scale()
    bundle = synthetic_bundle(scale, instance=0)
    mode = _mode_from_name(args.mode)
    report = run_workload(bundle, scale.with_mode(mode))
    print(f"mode {mode}: {len(report.answers)} user queries")
    for uq_id, seconds in report.processing_times().items():
        record = report.metrics.uq_records[uq_id]
        print(f"  {uq_id:6s} {seconds:8.3f} virtual s "
              f"({record.cqs_executed} CQs, "
              f"{record.results_returned} answers)")
    metrics = report.metrics
    print(f"work: {metrics.stream_tuples_read} stream reads + "
          f"{metrics.probes_performed} probes "
          f"({metrics.probe_cache_hits} cached)")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.common.clock import VirtualClock, WallClock
    from repro.data.figure1 import figure1_federation
    from repro.data.gus import GUSConfig, gus_federation
    from repro.service import (
        LoadConfig,
        QService,
        ServiceConfig,
        ShardedQService,
        generate_load,
    )

    if args.corpus == "gus":
        gus_config = GUSConfig(n_hubs=8, links_per_extra_hub=2,
                               synonym_every=3, satellites_per_hub=1,
                               n_sites=4, min_rows=80, max_rows=260,
                               domain_factor=0.45, seed=args.seed)
        federation = gus_federation(gus_config)
    else:
        gus_config = None
        federation = figure1_federation()
    load = [] if args.http else generate_load(federation, LoadConfig(
        n_queries=args.queries, rate_qps=args.rate, k=args.k,
        n_templates=args.templates, template_theta=args.theta,
        seed=args.seed,
    ))
    config = ExecutionConfig(mode=_mode_from_name(args.mode), k=args.k,
                             batch_window=args.batch_window, seed=args.seed,
                             cluster_jaccard=args.cluster_jaccard,
                             plan_cache=not args.no_plan_cache)
    if args.deadline is not None and args.deadline <= 0:
        raise ValueError(f"--deadline must be positive, got {args.deadline}")
    service_config = ServiceConfig(
        cache_ttl=args.cache_ttl,
        max_in_flight=args.max_in_flight,
        admission_policy=args.policy,
        default_deadline=args.deadline,
    )
    if args.shards < 1:
        raise ValueError(f"--shards must be positive, got {args.shards}")
    tracer = None
    if args.trace_dir is not None:
        from repro.obs.trace import Tracer
        tracer = Tracer()
    clock_mode = args.clock or ("wall" if args.http else "virtual")
    clock = WallClock() if clock_mode == "wall" else VirtualClock()
    if args.workers == "process" and args.shards < 2:
        raise ValueError("--workers process needs --shards > 1 "
                         "(one process per shard)")
    if args.shards > 1:
        worker_spec = None
        if args.workers == "process":
            from repro.service import WorkerSpec
            worker_spec = (WorkerSpec.gus(config, gus_config)
                           if args.corpus == "gus"
                           else WorkerSpec.figure1(config))
        service = ShardedQService(federation, config, n_shards=args.shards,
                                  routing=args.routing,
                                  service=service_config, tracer=tracer,
                                  clock=clock, workers=args.workers,
                                  worker_spec=worker_spec)
        fleet_note = (f", {args.shards} shards via {args.routing}"
                      + (f", {args.workers} workers"
                         if args.workers != "inproc" else ""))
    else:
        service = QService(federation, config, service_config,
                           tracer=tracer, clock=clock)
        fleet_note = ""
    if args.http:
        _serve_http(args, service, clock_mode, fleet_note)
    else:
        print(f"serving {len(load)} arrivals at ~{args.rate:g} q/s "
              f"({args.templates} templates, mode {args.mode}, "
              f"corpus {args.corpus}{fleet_note})...")
        report = service.run(load)
        print(report.render())
    # Shut the worker fleet down before exporting: process workers
    # ship their trace spans and final metric snapshots back at close.
    close = getattr(service, "close", None)
    if close is not None:
        close()
    if tracer is not None:
        from repro.obs.export import write_trace
        path = write_trace(tracer, args.trace_dir)
        print(f"traces    : {len(tracer.traces())} queries -> {path}")
    if args.metrics_out is not None:
        from repro.obs.export import write_metrics
        fmt = write_metrics(service.metrics_registry(), args.metrics_out)
        print(f"metrics   : {fmt} -> {args.metrics_out}")
    return 0


def _serve_http(args: argparse.Namespace, service, clock_mode: str,
                fleet_note: str) -> None:
    """Run the HTTP/SSE front end until shutdown (POST /admin/shutdown
    or Ctrl-C); the caller then writes the trace/metrics artifacts."""
    import asyncio

    from repro.service.http import QueryServiceHTTP

    tick = args.tick if clock_mode == "wall" else None

    async def _run() -> None:
        server = QueryServiceHTTP(service, host=args.host, port=args.port,
                                  tick=tick)
        await server.start()
        print(f"listening on http://{args.host}:{server.port} "
              f"(mode {args.mode}, corpus {args.corpus}, "
              f"{clock_mode} clock{fleet_note})", flush=True)
        try:
            await server.wait_closed()
        finally:
            await server.aclose()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    print(service.report().render())


def cmd_explain(args: argparse.Namespace) -> int:
    from repro.data.figure1 import figure1_federation
    from repro.keyword.queries import KeywordQuery
    from repro.obs.trace import Tracer
    from repro.service import QService

    federation = figure1_federation()
    config = ExecutionConfig(mode=_mode_from_name(args.mode), k=args.k)
    tracer = Tracer()
    service = QService(federation, config, tracer=tracer)
    handle = service.submit(
        KeywordQuery("Q", tuple(args.keywords), k=args.k))
    service.drain()
    answers = handle.answers or []
    if answers:
        for rank, answer in enumerate(answers, start=1):
            rows = ", ".join(
                f"{rel}#{tid}" for _a, rel, tid in sorted(answer.provenance))
            print(f"{rank:3d}. {answer.score:.4f}  {answer.cq_id}  [{rows}]")
    else:
        note = f" ({handle.reason})" if handle.reason else ""
        print(f"no results{note}")
    trace = handle.trace()
    if trace is None:
        print("no trace recorded")
        return 0
    print()
    print(trace.render())
    # Per-stage rollup: how the query's end-to-end virtual latency and
    # the process's wall time split across the pipeline stages.
    print()
    print("stage breakdown (top-level spans):")
    totals: dict[str, tuple[float, float]] = {}
    for span in trace.root.children:
        dv, dw = totals.get(span.name, (0.0, 0.0))
        totals[span.name] = (dv + (span.v_duration or 0.0),
                             dw + (span.w_duration or 0.0))
    for name, (dv, dw) in sorted(totals.items(),
                                 key=lambda kv: -kv[1][0]):
        print(f"  {name:<24} {dv:8.3f}s virtual  {dw * 1e3:8.3f}ms wall")
    if args.trace_dir is not None:
        from repro.obs.export import write_trace
        path = write_trace(tracer, args.trace_dir)
        print(f"\ntrace written to {path}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run
    from repro.lint.framework import LintError

    try:
        return run(args)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "search": cmd_search,
        "experiment": cmd_experiment,
        "workload": cmd_workload,
        "serve": cmd_serve,
        "explain": cmd_explain,
        "lint": cmd_lint,
    }
    try:
        return handlers[args.command](args)
    except ValueError as exc:
        # Config validation (k, rates, budgets...) raises ValueError
        # with a self-explanatory message; show it as a CLI error
        # rather than a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
