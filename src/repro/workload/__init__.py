"""Workload generators: the paper's synthetic and real-data suites."""

from repro.workload.realdata import build_realdata_workload, realdata_workload_config
from repro.workload.synthetic import (
    WorkloadConfig,
    arrival_times,
    build_workload,
    zipf_keyword_pairs,
)

__all__ = [
    "WorkloadConfig",
    "arrival_times",
    "build_realdata_workload",
    "build_workload",
    "realdata_workload_config",
    "zipf_keyword_pairs",
]
