"""The synthetic query workload of Section 7.

The paper generates "a suite of 15 user queries by choosing pairs of
keywords from a list of common biological terms, using a Zipf
distribution on the keywords", each yielding at most 20 conjunctive
queries over the GUS schema, posed over time with random inter-arrival
delays of up to 6 seconds.  This module reproduces that workload over
the GUS-like federation:

* keyword pairs are Zipf-drawn from the corpus vocabulary (so popular
  terms -- the "core concepts" like *protein* -- recur across user
  queries, creating the overlap the paper exploits);
* each user query carries its own Q System scoring function with
  Zipf-drawn per-relation coefficients (different users rank
  differently);
* arrival times use uniform random gaps of at most ``max_gap`` virtual
  seconds (paper: 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import ZipfSampler, make_rng
from repro.data.database import Federation
from repro.data.inverted import InvertedIndex
from repro.keyword.candidates import CandidateNetworkGenerator
from repro.keyword.queries import KeywordQuery, UserQuery
from repro.scoring.models import qsystem_score, user_coefficients


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of the synthetic workload (defaults match the paper)."""

    n_queries: int = 15
    keywords_per_query: int = 2
    k: int = 50
    max_gap_seconds: float = 6.0
    max_cqs_per_uq: int = 20
    vocabulary_size: int = 30
    seed: int = 5


def zipf_keyword_pairs(index: InvertedIndex, config: WorkloadConfig
                       ) -> list[tuple[str, ...]]:
    """Draw the keyword tuples for every user query.

    Keywords come from the indexed vocabulary ordered by frequency, so
    Zipf rank 0 is the corpus's most common term.  Repeated draws
    within one query are rejected (a query needs distinct keywords);
    repeated *pairs across queries* are allowed -- recurring queries are
    precisely the workload property that makes reuse pay off.
    """
    vocabulary = index.vocabulary()[: config.vocabulary_size]
    if len(vocabulary) < config.keywords_per_query:
        raise ValueError(
            f"vocabulary has only {len(vocabulary)} terms; cannot draw "
            f"{config.keywords_per_query}-keyword queries"
        )
    sampler = ZipfSampler(len(vocabulary), theta=1.0,
                          rng=make_rng(config.seed, "workload-keywords"))
    pairs: list[tuple[str, ...]] = []
    for _query in range(config.n_queries):
        chosen: list[str] = []
        while len(chosen) < config.keywords_per_query:
            term = vocabulary[sampler.sample()]
            if term not in chosen:
                chosen.append(term)
        pairs.append(tuple(chosen))
    return pairs


def arrival_times(config: WorkloadConfig) -> list[float]:
    """Uniform random gaps of up to ``max_gap_seconds`` (paper: 6 s)."""
    rng = make_rng(config.seed, "workload-arrivals")
    times: list[float] = []
    now = 0.0
    for _query in range(config.n_queries):
        times.append(now)
        now += rng.uniform(0.0, config.max_gap_seconds)
    return times


def build_workload(federation: Federation,
                   config: WorkloadConfig | None = None,
                   index: InvertedIndex | None = None) -> list[UserQuery]:
    """The full synthetic workload: 15 user queries with per-user
    scoring functions, expanded to candidate networks and timestamped.
    """
    config = config or WorkloadConfig()
    index = index if index is not None else InvertedIndex(federation)
    pairs = zipf_keyword_pairs(index, config)
    times = arrival_times(config)
    relations = list(federation.schema.relation_names)
    uqs: list[UserQuery] = []
    for i, (keywords, arrival) in enumerate(zip(pairs, times), start=1):
        user = f"user{i}"
        coefficients = user_coefficients(relations, config.seed, user)

        def score_factory(expr, fed, _coeff=coefficients):
            return qsystem_score(expr, fed, edge_multipliers=_coeff)

        generator = CandidateNetworkGenerator(
            federation, index=index, score_factory=score_factory,
            max_cqs=config.max_cqs_per_uq,
        )
        kq = KeywordQuery(
            kq_id=f"UQ{i}",
            keywords=keywords,
            k=config.k,
            user=user,
            arrival=arrival,
        )
        uqs.append(generator.generate(kq))
    return uqs
