"""The Pfam/InterPro workload of Section 7.5.

The paper creates 15 keyword queries "using the same methodology as in
our synthetic case, using keywords that matched to sequence, family,
and publication data", matching two-keyword phrases with MySQL's text
search and capturing its similarity score plus one extra score
attribute: publication year.  "Each user query here resulted in 4
conjunctive queries."

We reproduce the structure over the Pfam/InterPro-like corpus: 15
two-keyword user queries Zipf-drawn from the corpus vocabulary, each
capped at 4 candidate networks (the small 7-relation schema yields few
join trees, matching the paper), DISCOVER-style IR scoring (standing in
for MySQL's similarity ranking) with the stored ``recency`` score
attribute contributing through the link tables.
"""

from __future__ import annotations

from repro.data.database import Federation
from repro.data.inverted import InvertedIndex
from repro.keyword.candidates import CandidateNetworkGenerator
from repro.keyword.queries import KeywordQuery, UserQuery
from repro.scoring.models import discover_score
from repro.workload.synthetic import WorkloadConfig, arrival_times, zipf_keyword_pairs


def realdata_workload_config(seed: int = 29) -> WorkloadConfig:
    """Paper parameters for the real-data run: 15 UQs, 4 CQs each."""
    return WorkloadConfig(
        n_queries=15,
        keywords_per_query=2,
        k=50,
        max_gap_seconds=6.0,
        max_cqs_per_uq=4,
        vocabulary_size=25,
        seed=seed,
    )


def build_realdata_workload(federation: Federation,
                            config: WorkloadConfig | None = None,
                            index: InvertedIndex | None = None
                            ) -> list[UserQuery]:
    """15 user queries over the Pfam/InterPro-like federation."""
    config = config or realdata_workload_config()
    index = index if index is not None else InvertedIndex(federation)
    pairs = zipf_keyword_pairs(index, config)
    times = arrival_times(config)
    generator = CandidateNetworkGenerator(
        federation, index=index, score_factory=discover_score,
        max_cqs=config.max_cqs_per_uq,
    )
    uqs: list[UserQuery] = []
    for i, (keywords, arrival) in enumerate(zip(pairs, times), start=1):
        kq = KeywordQuery(
            kq_id=f"RQ{i}",
            keywords=keywords,
            k=config.k,
            user=f"user{i}",
            arrival=arrival,
        )
        uqs.append(generator.generate(kq))
    return uqs
