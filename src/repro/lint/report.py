"""Rendering for lint runs: human console text and machine JSON."""

from __future__ import annotations

import json

from repro.lint.framework import LintReport, all_rules


def render_console(report: LintReport, verbose: bool = False) -> str:
    """The human-facing run summary (one line per violation)."""
    lines = [v.render() for v in report.violations]
    if verbose:
        for violation, supp in report.suppressed:
            lines.append(f"{violation.render()}  "
                         f"[suppressed: {supp.reason}]")
    tally = (f"{len(report.violations)} violation"
             f"{'' if len(report.violations) == 1 else 's'}")
    if report.suppressed:
        tally += f" ({len(report.suppressed)} suppressed with reasons)"
    lines.append(f"{tally} across {report.files_checked} files")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    return json.dumps(report.as_dict(), indent=2, sort_keys=True)


def render_rule_list() -> str:
    """``--list-rules``: every rule, what it forbids, and the
    differential guarantee it protects."""
    blocks = []
    for rule_id, rule in sorted(all_rules().items()):
        blocks.append(f"{rule_id}\n"
                      f"  forbids : {rule.summary}\n"
                      f"  protects: {rule.contract}")
    blocks.append(
        "suppress a finding with '# repro: allow[rule-id] -- reason' "
        "(the reason is mandatory);\nan allow on a 'def' line covers "
        "that function, 'allow-module' covers the file.")
    return "\n".join(blocks)
