"""``repro lint`` -- run the invariant checker from the command line.

Exit codes: ``0`` clean, ``1`` violations found, ``2`` usage error.
Also runnable as ``python -m repro.lint``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.framework import LintError, run_lint
from repro.lint.report import render_console, render_json, render_rule_list


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``lint`` option surface (shared with the top-level CLI)."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: src and tests "
             "where they exist, else the current directory)")
    parser.add_argument(
        "--format", default="console", choices=("console", "json"),
        help="output format (default console)")
    parser.add_argument(
        "--rules", default=None, metavar="ID[,ID...]",
        help="comma-separated rule ids to run (default: all; stale-"
             "suppression detection only runs with the full set)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule with the invariant it enforces and exit")
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="also write the report (in the chosen format) to FILE")
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="console format: list suppressed findings with reasons")


def default_paths() -> list[str]:
    found = [name for name in ("src", "tests") if Path(name).is_dir()]
    return found or ["."]


def run(args: argparse.Namespace) -> int:
    if args.list_rules:
        print(render_rule_list())
        return 0
    paths = args.paths or default_paths()
    rule_ids = None
    if args.rules is not None:
        rule_ids = [part.strip() for part in args.rules.split(",")
                    if part.strip()]
        if not rule_ids:
            raise LintError("--rules given but names no rule ids")
    report = run_lint(paths, rule_ids=rule_ids)
    rendered = render_json(report) if args.format == "json" \
        else render_console(report, verbose=args.show_suppressed)
    print(rendered)
    if args.output is not None:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
    return report.exit_code


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based checker for the project's determinism, "
                    "clock, wire-protocol, and observability contracts")
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run(args)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
