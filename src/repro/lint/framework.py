"""The repro-lint rule framework.

Every differential guarantee this reproduction makes -- byte-identical
answers across inproc/process workers, virtual-vs-wall clock modes, and
cache on/off -- rests on a handful of invariants (time flows through
:class:`~repro.common.clock.Clock`, randomness through
``common/rng.py``, the wire stays pickle-free, telemetry counters never
drift from the registry).  They used to be enforced by convention; this
package enforces them mechanically with a stdlib-``ast`` static pass.

The framework half (this module) provides:

* :class:`LintModule` -- one parsed source file with the services every
  rule needs: resolved import aliases (``from time import monotonic``
  still resolves to ``time.monotonic``), parent pointers, enclosing
  function spans, and the set of AST nodes that live inside type
  annotations (so ``rng: random.Random`` is never mistaken for a call
  site);
* :class:`Rule` -- the visitor-style base class; concrete rules live in
  :mod:`repro.lint.rules` and register themselves via :func:`register`;
* suppression handling -- ``# repro: allow[rule-id] -- reason``
  comments, parsed from the token stream (never from string literals).
  A reason is *mandatory*: an allow without one is itself a violation,
  as is an allow naming an unknown rule or one that no longer
  suppresses anything;
* :func:`run_lint` -- file discovery (directories carrying a
  ``.lint-skip`` marker, e.g. the known-bad fixture corpus, are only
  linted when named explicitly), rule execution, suppression
  application, and the :class:`LintReport` the CLI renders.

Exit-code contract (enforced by :mod:`repro.lint.cli`): ``0`` clean,
``1`` violations, ``2`` usage error.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

__all__ = [
    "ALLOW_RE",
    "LintError",
    "LintModule",
    "LintReport",
    "Rule",
    "Suppression",
    "Violation",
    "all_rules",
    "format_suppression",
    "get_rules",
    "parse_suppression",
    "register",
    "run_lint",
    "SKIP_MARKER",
]

#: A directory containing this marker file is skipped during recursive
#: discovery (the known-bad lint fixtures live behind one); explicitly
#: named files are always linted.
SKIP_MARKER = ".lint-skip"


class LintError(Exception):
    """A usage error (unknown rule id, unreadable path): exit code 2."""


@dataclass(frozen=True)
class Violation:
    """One rule breach at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Suppression attachment span: the enclosing statement's lines
    #: plus its lead comment block, so an allow comment above, inside,
    #: or trailing a multi-line statement all count (not part of the
    #: violation's identity).
    end_line: int = 0
    attach_line: int = 0

    def as_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.rule}: {self.message}"


@dataclass
class Suppression:
    """One parsed ``# repro: allow[rule-id] -- reason`` comment."""

    rule: str
    reason: str
    line: int
    module_level: bool = False
    used: bool = False


# A comment carrying the _CLAIM_RE marker belongs to the linter; one
# that then fails the allow grammar (including a missing reason) is a
# malformed suppression and reported as such.
_CLAIM_RE = re.compile(r"#\s*repro\s*:")
ALLOW_RE = re.compile(
    r"#\s*repro\s*:\s*(?P<scope>allow-module|allow)"
    r"\[(?P<rule>[A-Za-z0-9_-]+)\]"
    r"(?:\s*--\s*(?P<reason>.*\S))?\s*$"
)


def format_suppression(rule: str, reason: str,
                       module_level: bool = False) -> str:
    """Render the canonical allow comment (the round-trip inverse of
    :func:`parse_suppression`)."""
    scope = "allow-module" if module_level else "allow"
    return f"# repro: {scope}[{rule}] -- {reason}"


def parse_suppression(comment: str, line: int = 0) -> Suppression | None:
    """Parse one comment string into a :class:`Suppression`.

    Returns ``None`` for comments the linter does not claim.  Raises
    :class:`ValueError` for a claimed-but-malformed comment (bad
    grammar, or a missing/empty reason -- every allow must say *why*).
    """
    if not _CLAIM_RE.search(comment):
        return None
    match = ALLOW_RE.search(comment)
    if match is None:
        raise ValueError(
            "malformed repro-lint comment (expected "
            "'# repro: allow[rule-id] -- reason'): " + comment.strip())
    reason = match.group("reason")
    if not reason:
        raise ValueError(
            f"suppression for [{match.group('rule')}] is missing its "
            "reason ('# repro: allow[rule-id] -- reason'); an allow "
            "without a written justification is itself a violation")
    return Suppression(rule=match.group("rule"), reason=reason, line=line,
                       module_level=match.group("scope") == "allow-module")


class LintModule:
    """One parsed file plus the analyses every rule shares."""

    def __init__(self, path: Path, display: str, source: str) -> None:
        self.path = path
        self.display = display
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source)
        self.suppressions: list[Suppression] = []
        #: Malformed allow comments, as ready-made violations.
        self.suppression_problems: list[Violation] = []
        self._collect_suppressions()
        self.imports = self._collect_imports()
        self._parents: dict[int, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        self._annotation_ids = self._collect_annotation_nodes()
        #: (lead comment start, def line, body end) per function: an
        #: allow on the def line or in the comment block directly above
        #: it covers the whole function.
        self.function_spans: list[tuple[int, int, int]] = [
            (self.comment_lead_start(node.lineno), node.lineno,
             getattr(node, "end_lineno", node.lineno) or node.lineno)
            for node in ast.walk(self.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    # -- shared analyses -----------------------------------------------------

    def _collect_suppressions(self) -> None:
        try:
            tokens = tokenize.generate_tokens(
                io.StringIO(self.source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                try:
                    supp = parse_suppression(tok.string, line=tok.start[0])
                except ValueError as exc:
                    self.suppression_problems.append(Violation(
                        rule="lint-suppression", path=self.display,
                        line=tok.start[0], col=tok.start[1],
                        message=str(exc), end_line=tok.start[0]))
                    continue
                if supp is not None:
                    self.suppressions.append(supp)
        except tokenize.TokenError:  # pragma: no cover - ast.parse catches
            pass

    def _collect_imports(self) -> dict[str, str]:
        """Local name -> dotted origin, so rules match ``from time
        import monotonic`` and ``import time as t`` alike."""
        out: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    out[local] = alias.name if alias.asname else \
                        alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom):
                prefix = ("." * node.level) + (node.module or "")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    out[local] = f"{prefix}.{alias.name}" if prefix \
                        else alias.name
        return out

    def _collect_annotation_nodes(self) -> set[int]:
        """ids of every AST node inside a type annotation: rules skip
        them (``rng: random.Random`` is a type, not a call site)."""
        roots: list[ast.AST] = []
        for node in ast.walk(self.tree):
            if isinstance(node, ast.AnnAssign):
                roots.append(node.annotation)
            elif isinstance(node, ast.arg) and node.annotation is not None:
                roots.append(node.annotation)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.returns is not None:
                roots.append(node.returns)
        ids: set[int] = set()
        for root in roots:
            for sub in ast.walk(root):
                ids.add(id(sub))
        return ids

    def in_annotation(self, node: ast.AST) -> bool:
        return id(node) in self._annotation_ids

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self.parent(node)
        while cur is not None:
            yield cur
            cur = self.parent(cur)

    def enclosing_function(
            self, node: ast.AST) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted name of a ``Name``/``Attribute`` chain with import
        aliases folded in, or ``None`` for anything else."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(self.imports.get(node.id, node.id))
            return ".".join(reversed(parts))
        return None

    def comment_lead_start(self, lineno: int) -> int:
        """First line of the contiguous comment block directly above
        ``lineno`` (or ``lineno`` itself with no such block)."""
        start = lineno
        while start > 1 and self.lines[start - 2].lstrip().startswith("#"):
            start -= 1
        return start

    def _statement_span(self, node: ast.AST) -> tuple[int, int]:
        stmt: ast.AST = node
        if not isinstance(stmt, ast.stmt):
            for anc in self.ancestors(node):
                if isinstance(anc, ast.stmt):
                    stmt = anc
                    break
        lineno = getattr(stmt, "lineno", 1)
        end = getattr(stmt, "end_lineno", None) or lineno
        return self.comment_lead_start(lineno), end

    def violation(self, rule: str, node: ast.AST, message: str) -> Violation:
        attach_lo, attach_hi = self._statement_span(node)
        return Violation(
            rule=rule, path=self.display,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            end_line=attach_hi, attach_line=attach_lo)


class Rule:
    """Base class for one invariant check.

    Concrete rules set ``id`` (kebab-case, the suppression handle),
    ``summary`` (one line), and ``contract`` (which differential
    guarantee the rule protects -- surfaced by ``--list-rules`` and the
    docs), override :meth:`check`, and optionally narrow
    :meth:`applies_to`.
    """

    id: str = ""
    summary: str = ""
    contract: str = ""

    def applies_to(self, module: LintModule) -> bool:
        return True

    def check(self, module: LintModule) -> Iterable[Violation]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and index the rule by id."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> dict[str, Rule]:
    # Importing the rules package populates the registry exactly once.
    from repro.lint import rules  # noqa: F401
    return dict(_REGISTRY)


def get_rules(rule_ids: Iterable[str] | None = None) -> list[Rule]:
    registry = all_rules()
    if rule_ids is None:
        return list(registry.values())
    out = []
    for rule_id in rule_ids:
        if rule_id not in registry:
            known = ", ".join(sorted(registry))
            raise LintError(f"unknown rule id {rule_id!r} (known: {known})")
        out.append(registry[rule_id])
    return out


# -- file discovery -----------------------------------------------------------

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
            else:
                raise LintError(f"not a python file: {path}")
        elif path.is_dir():
            yield from _walk(path)
        else:
            raise LintError(f"no such file or directory: {path}")


def _walk(root: Path) -> Iterator[Path]:
    if (root / SKIP_MARKER).exists():
        return
    entries = sorted(root.iterdir(), key=lambda p: p.name)
    for entry in entries:
        if entry.name.startswith(".") or entry.name in _SKIP_DIRS:
            continue
        if entry.is_dir():
            yield from _walk(entry)
        elif entry.suffix == ".py":
            yield entry


# -- the runner ---------------------------------------------------------------

@dataclass
class LintReport:
    """Everything one lint run produced, for both output formats."""

    files_checked: int
    violations: list[Violation]
    suppressed: list[tuple[Violation, Suppression]] = field(
        default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.violations else 0

    def as_dict(self) -> dict:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "exit_code": self.exit_code,
            "violations": [v.as_dict() for v in self.violations],
            "suppressed": [
                {**v.as_dict(), "reason": s.reason}
                for v, s in self.suppressed
            ],
        }


def _display_path(path: Path, root: Path) -> str:
    try:
        return str(path.resolve().relative_to(root.resolve()))
    except ValueError:
        return str(path)


def _match_suppression(module: LintModule,
                       violation: Violation) -> Suppression | None:
    """The allow that covers ``violation``, if any.

    Line-level allows attach anywhere in the offending statement's
    span, including the comment block directly above it; an allow on a
    ``def`` line (or in the comments directly above it) covers that
    whole function -- for dedicated helpers that are only ever called
    under a guard; ``allow-module`` covers the file.
    """
    lo = violation.attach_line or violation.line
    hi = max(violation.end_line, violation.line)
    def_ranges = [
        (lead, def_line) for lead, def_line, end in module.function_spans
        if def_line <= violation.line <= end
    ]
    for supp in module.suppressions:
        if supp.rule != violation.rule:
            continue
        if supp.module_level:
            return supp
        if lo <= supp.line <= hi:
            return supp
        if any(lead <= supp.line <= def_line
               for lead, def_line in def_ranges):
            return supp
    return None


def run_lint(paths: Iterable[str | Path],
             rule_ids: Iterable[str] | None = None,
             root: Path | None = None,
             source_loader: Callable[[Path], str] | None = None,
             ) -> LintReport:
    """Lint ``paths`` with the selected rules (default: all).

    When the full rule set runs, stale allows (suppressing nothing) are
    reported too; a filtered run skips that check, since a suppression
    for an unselected rule would look spuriously unused.
    """
    rules = get_rules(rule_ids)
    full_run = rule_ids is None
    known_ids = set(all_rules()) | {"lint-parse", "lint-suppression"}
    root = root if root is not None else Path.cwd()
    violations: list[Violation] = []
    suppressed: list[tuple[Violation, Suppression]] = []
    files = 0
    for path in iter_python_files(paths):
        files += 1
        display = _display_path(path, root)
        source = source_loader(path) if source_loader is not None \
            else path.read_text(encoding="utf-8")
        try:
            module = LintModule(path, display, source)
        except SyntaxError as exc:
            violations.append(Violation(
                rule="lint-parse", path=display, line=exc.lineno or 1,
                col=exc.offset or 0, message=f"file does not parse: {exc.msg}",
                end_line=exc.lineno or 1))
            continue
        violations.extend(module.suppression_problems)
        for supp in module.suppressions:
            if supp.rule not in known_ids:
                violations.append(Violation(
                    rule="lint-suppression", path=display, line=supp.line,
                    col=0, end_line=supp.line,
                    message=f"suppression names unknown rule id "
                            f"{supp.rule!r}"))
                supp.used = True  # don't double-report as unused
        for rule in rules:
            if not rule.applies_to(module):
                continue
            for violation in rule.check(module):
                supp = _match_suppression(module, violation)
                if supp is not None:
                    supp.used = True
                    suppressed.append((violation, supp))
                else:
                    violations.append(violation)
        if full_run:
            for supp in module.suppressions:
                if not supp.used:
                    violations.append(Violation(
                        rule="lint-suppression", path=display,
                        line=supp.line, col=0, end_line=supp.line,
                        message=f"stale suppression: allow[{supp.rule}] "
                                f"matches no violation -- remove it "
                                f"(reason was: {supp.reason})"))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    suppressed.sort(key=lambda vs: (vs[0].path, vs[0].line, vs[0].col))
    return LintReport(files_checked=files, violations=violations,
                      suppressed=suppressed)
