"""RNG discipline: randomness flows through ``common/rng.py``.

Every experiment, load trace, and synthetic corpus must replay
bit-for-bit from its seed (the answer digests pinned in
``benchmarks/results/`` and every hypothesis differential suite depend
on it).  The module-level ``random.*`` functions draw from one hidden,
process-global generator -- any call perturbs every other consumer --
and a ``random.Random()`` constructed without :func:`repro.common.rng.
make_rng` either has no seed at all or couples unrelated streams to one
raw integer.  Outside ``common/rng.py``, generators are *passed in*,
derived via ``make_rng(seed, *stream_labels)``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.framework import LintModule, Rule, Violation, register

#: Module-level functions of :mod:`random` (the hidden global stream).
BANNED_FUNCTIONS = frozenset({
    "random.random", "random.seed", "random.getstate", "random.setstate",
    "random.randint", "random.randrange", "random.getrandbits",
    "random.randbytes", "random.choice", "random.choices",
    "random.shuffle", "random.sample", "random.uniform",
    "random.triangular", "random.betavariate", "random.expovariate",
    "random.gammavariate", "random.gauss", "random.lognormvariate",
    "random.normalvariate", "random.vonmisesvariate",
    "random.paretovariate", "random.weibullvariate",
})

#: Generator classes that must only be constructed in ``common/rng.py``.
BANNED_CONSTRUCTORS = frozenset({"random.Random", "random.SystemRandom"})

ALLOWED_SUFFIXES = ("common/rng.py",)


@register
class RngDiscipline(Rule):
    id = "rng-discipline"
    summary = ("no module-level random.* calls and no random.Random() "
               "construction outside common/rng.py")
    contract = ("seeded reproducibility: checked-in answer digests "
                "(bench_hotpath/bench_optimizer baselines) and every "
                "differential suite replay synthetic data and load "
                "traces bit-for-bit from make_rng streams")

    def applies_to(self, module: LintModule) -> bool:
        path = module.path.as_posix()
        return not any(path.endswith(sfx) for sfx in ALLOWED_SUFFIXES)

    def check(self, module: LintModule) -> Iterable[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = module.resolve(node.func)
                if name in BANNED_CONSTRUCTORS:
                    yield module.violation(
                        self.id, node,
                        f"{name}(...) constructed outside common/rng.py "
                        f"-- derive a generator with "
                        f"repro.common.rng.make_rng(seed, *stream_labels) "
                        f"so streams stay independent and replayable")
                continue
            # Bare references to the module-level functions (outside
            # annotations) catch both calls and aliasing.
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            if not isinstance(getattr(node, "ctx", None), ast.Load):
                continue
            if module.in_annotation(node):
                continue
            parent = module.parent(node)
            if isinstance(parent, ast.Attribute) and parent.value is node:
                continue
            name = module.resolve(node)
            if name in BANNED_FUNCTIONS:
                yield module.violation(
                    self.id, node,
                    f"{name!r} draws from the hidden process-global "
                    f"generator -- pass an explicit random.Random built "
                    f"by repro.common.rng.make_rng instead")
