"""Clock discipline: time flows through the ``Clock`` protocol.

The virtual clock is the correctness oracle: every differential suite
(``tests/test_clock_modes.py``, ``test_sharded_equivalence.py``,
``test_process_workers.py``) pins wall-mode and process-worker answers
against a virtual-clock run.  One stray ``time.monotonic()`` in a
serving or execution path silently decouples that path from the oracle
-- the run still passes locally and flakes forever after.  So outside
``common/clock.py`` (where ``WallClock`` and the sanctioned
observability timer :func:`repro.common.clock.wall_timer` live), no
code reads the OS clock or sleeps directly.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.framework import LintModule, Rule, Violation, register

#: OS-time entry points banned outside ``common/clock.py``.
BANNED = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.sleep",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: The one module allowed to touch the OS clock.
ALLOWED_SUFFIXES = ("common/clock.py",)


@register
class ClockDiscipline(Rule):
    id = "clock-discipline"
    summary = ("no direct OS-clock access (time.time/monotonic/"
               "perf_counter/sleep, datetime.now) outside common/clock.py")
    contract = ("virtual-vs-wall clock differential suites "
                "(test_clock_modes, test_sharded_equivalence): answers "
                "must be byte-identical across clock families, which "
                "requires every timestamp to flow through the Clock "
                "protocol or clock.wall_timer")

    def applies_to(self, module: LintModule) -> bool:
        path = module.path.as_posix()
        return not any(path.endswith(sfx) for sfx in ALLOWED_SUFFIXES)

    def check(self, module: LintModule) -> Iterable[Violation]:
        # References (not just calls) are flagged so aliasing --
        # ``wall = time.perf_counter`` -- cannot smuggle a clock out;
        # annotation subtrees are skipped by construction.
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            if not isinstance(getattr(node, "ctx", None), ast.Load):
                continue
            if module.in_annotation(node):
                continue
            parent = module.parent(node)
            if isinstance(parent, ast.Attribute) and parent.value is node:
                continue  # report the full dotted chain once
            name = module.resolve(node)
            if name in BANNED:
                yield module.violation(
                    self.id, node,
                    f"direct OS-clock access {name!r} outside "
                    f"common/clock.py -- take a Clock (VirtualClock/"
                    f"WallClock) or use repro.common.clock.wall_timer "
                    f"for observability timings")
