"""Observability drift: tracing stays free when off, counters stay
registry-backed.

* ``obs-guard``: every span-recording call on a tracer
  (``tracer.event(...)``, ``self.tracer.span_uq(...)``, ...) must sit
  under a ``tracer.enabled`` guard.  The tracing bench
  (``--trace-overhead``) holds tracing-off within 2% of a no-tracer
  build; an unguarded record site pays argument construction on every
  query even when tracing is off, and that budget erodes one call site
  at a time.  Accepted guard shapes (matching the codebase's idioms):
  an enclosing ``if``/conditional whose test reads ``.enabled`` (or a
  local bound from it, e.g. ``tracing = self.tracer.enabled``), an
  earlier early-exit ``if not tracer.enabled: return`` in the same
  function, or a short-circuit ``tracer.enabled and ...``.  Dedicated
  emission helpers that are *only called* under a guard carry a
  function-scoped allow on their ``def`` line.

* ``obs-counter-drift``: every ``_CounterField`` attribute of
  ``Telemetry`` appears in ``COUNTER_FIELDS`` and vice versa.
  ``merged`` and the wire ``state()`` iterate that tuple, so a counter
  missing from it silently vanishes from every fleet merge and worker
  snapshot -- the drift PR 6's audit test catches at runtime is caught
  here at lint time.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.framework import LintModule, Rule, Violation, register

#: Tracer methods that record spans/events (reads like ``trace()``,
#: ``traces()``, ``jsonl_lines()``, ``wall()`` are free to call).
RECORD_METHODS = frozenset({
    "start_query", "finish_query", "event", "event_uq", "span", "span_uq",
    "child", "alias", "adopt",
})

TELEMETRY_SUFFIX = "service/telemetry.py"


def _mentions_enabled(node: ast.AST, guard_names: set[str]) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "enabled":
            return True
        if isinstance(sub, ast.Name) and sub.id in guard_names:
            return True
    return False


def _guard_names(func: ast.AST) -> set[str]:
    """Local names bound from an ``.enabled`` read, e.g.
    ``tracing = self.tracer.enabled``."""
    names: set[str] = set()
    for sub in ast.walk(func):
        if isinstance(sub, ast.Assign) and any(
                isinstance(s, ast.Attribute) and s.attr == "enabled"
                for s in ast.walk(sub.value)):
            for target in sub.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _is_tracer_chain(node: ast.AST) -> bool:
    """Does this expression denote a tracer (``tracer``,
    ``self.tracer``, ``service.tracer``...)?"""
    if isinstance(node, ast.Name):
        return node.id == "tracer" or node.id.endswith("_tracer")
    if isinstance(node, ast.Attribute):
        return node.attr == "tracer" or node.attr.endswith("_tracer")
    return False


@register
class ObsGuard(Rule):
    id = "obs-guard"
    summary = ("tracer record calls (event/span/finish_query/...) must "
               "be guarded by tracer.enabled")
    contract = ("zero-overhead-when-off tracing: the --trace-overhead "
                "bench gates tracing-off within 2% of a no-tracer "
                "build, which only holds if no record site runs (or "
                "builds arguments) unguarded")

    def applies_to(self, module: LintModule) -> bool:
        parts = set(module.path.parts)
        # Scoped to the repro package (test files drive tracers
        # directly on purpose); the tracer's own implementation and
        # the lint package are out of scope.
        return "repro" in parts and not parts.intersection({"obs", "lint"})

    def check(self, module: LintModule) -> Iterable[Violation]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in RECORD_METHODS
                    and _is_tracer_chain(node.func.value)):
                continue
            if self._guarded(module, node):
                continue
            yield module.violation(
                self.id, node,
                f"tracer.{node.func.attr}(...) outside a tracer.enabled "
                f"guard: record sites must be free when tracing is off "
                f"(wrap in `if tracer.enabled:`; a helper that is only "
                f"called under a guard takes a function-scoped allow on "
                f"its def line)")

    def _guarded(self, module: LintModule, call: ast.Call) -> bool:
        func = module.enclosing_function(call)
        guard_names = _guard_names(func) if func is not None else set()
        # 1. An enclosing if/ternary/short-circuit that reads .enabled.
        prev: ast.AST = call
        for anc in module.ancestors(call):
            if isinstance(anc, ast.If) \
                    and _mentions_enabled(anc.test, guard_names):
                return True
            if isinstance(anc, ast.IfExp) and prev is not anc.test \
                    and _mentions_enabled(anc.test, guard_names):
                return True
            if isinstance(anc, ast.BoolOp) and isinstance(anc.op, ast.And):
                for value in anc.values:
                    if value is prev:
                        break
                    if _mentions_enabled(value, guard_names):
                        return True
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
            prev = anc
        # 2. An earlier early-exit guard in the same function:
        #    ``if not tracer.enabled: return``.
        if func is not None:
            for stmt in ast.walk(func):
                if not isinstance(stmt, ast.If):
                    continue
                if stmt.lineno >= call.lineno:
                    continue
                if not _mentions_enabled(stmt.test, guard_names):
                    continue
                if any(isinstance(s, (ast.Return, ast.Raise, ast.Continue))
                       for s in ast.walk(stmt)):
                    return True
        return False


@register
class ObsCounterDrift(Rule):
    id = "obs-counter-drift"
    summary = ("Telemetry._CounterField attributes and COUNTER_FIELDS "
               "must list exactly the same counters")
    contract = ("fleet merge/export fidelity: Telemetry.merged and the "
                "worker wire state() iterate COUNTER_FIELDS, so a "
                "counter missing there silently drops out of every "
                "sharded report and process-worker snapshot")

    def applies_to(self, module: LintModule) -> bool:
        return module.path.as_posix().endswith(TELEMETRY_SUFFIX)

    def check(self, module: LintModule) -> Iterable[Violation]:
        telemetry = next(
            (node for node in ast.walk(module.tree)
             if isinstance(node, ast.ClassDef) and node.name == "Telemetry"),
            None)
        if telemetry is None:
            yield module.violation(
                self.id, module.tree,
                "service/telemetry.py no longer defines class Telemetry "
                "-- update the obs-counter-drift rule alongside the "
                "refactor")
            return
        declared: dict[str, ast.AST] = {}
        listed: dict[str, ast.AST] = {}
        for stmt in telemetry.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                name = stmt.targets[0].id
                value = stmt.value
                if isinstance(value, ast.Call) \
                        and isinstance(value.func, ast.Name) \
                        and value.func.id == "_CounterField":
                    declared[name] = stmt
                elif name == "COUNTER_FIELDS" \
                        and isinstance(value, (ast.Tuple, ast.List)):
                    for elt in value.elts:
                        if isinstance(elt, ast.Constant) \
                                and isinstance(elt.value, str):
                            listed[elt.value] = elt
        for name, node in declared.items():
            if name not in listed:
                yield module.violation(
                    self.id, node,
                    f"counter {name!r} is a _CounterField but missing "
                    f"from COUNTER_FIELDS -- it would silently vanish "
                    f"from Telemetry.merged and the worker snapshot wire")
        for name, node in listed.items():
            if name not in declared:
                yield module.violation(
                    self.id, node,
                    f"COUNTER_FIELDS lists {name!r} but Telemetry has "
                    f"no matching _CounterField attribute")
