"""Wire hygiene: the shard-worker protocol stays pickle-free and typed.

The process-per-shard transport (PR 8) is only safe because the wire is
versioned JSON over frozen dataclasses: a worker can never execute a
front door's object graph, and an unknown field/kind/version is a hard
:class:`~repro.service.protocol.ProtocolError`, not a guess.  Two rules
keep that true as messages accumulate:

* ``wire-no-pickle``: nothing imports an arbitrary-object serializer
  (``pickle`` and friends), anywhere.  One pickled payload on the wire
  and the version gate means nothing.
* ``wire-message-shape``: every registered message class in
  ``service/protocol.py`` is a ``@dataclass(frozen=True)`` whose fields
  are annotated with JSON-representable types (str/int/float/bool/
  None/dict, ``tuple[...]``, unions of those, or nested message
  classes).  ``list`` is rejected on purpose: the decoder rebuilds
  sequences as tuples, so a ``list`` field would not round-trip equal.

The schema *values* are locked separately by the golden snapshot test
(``tests/test_protocol_schema.py``); this rule locks the shape.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.framework import LintModule, Rule, Violation, register

#: Modules that deserialize to arbitrary Python objects.
FORBIDDEN_SERIALIZERS = frozenset({
    "pickle", "cPickle", "_pickle", "dill", "cloudpickle", "marshal",
    "shelve",
})

#: JSON-representable leaf annotations for wire messages.
_WIRE_LEAVES = frozenset({"str", "int", "float", "bool", "dict", "tuple"})

PROTOCOL_SUFFIX = "service/protocol.py"


@register
class WireNoPickle(Rule):
    id = "wire-no-pickle"
    summary = "no pickle/marshal/dill/shelve imports anywhere"
    contract = ("process-worker safety: the versioned JSON wire "
                "(test_protocol round-trip suite) guarantees a worker "
                "never executes a peer's object graph; any pickle "
                "import is one refactor away from breaking that")

    def check(self, module: LintModule) -> Iterable[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                names = [node.module] if node.module else []
            else:
                continue
            for name in names:
                root = name.split(".")[0]
                if root in FORBIDDEN_SERIALIZERS:
                    yield module.violation(
                        self.id, node,
                        f"import of {root!r}: arbitrary-object "
                        f"serializers are banned -- the wire is "
                        f"versioned JSON (repro.service.protocol."
                        f"encode/decode)")


def _wire_ok(node: ast.AST, message_names: set[str]) -> bool:
    """Is this annotation expression JSON-representable on the wire?"""
    if isinstance(node, ast.Constant):
        return node.value is None or node.value is Ellipsis
    if isinstance(node, ast.Name):
        return node.id in _WIRE_LEAVES or node.id in message_names
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _wire_ok(node.left, message_names) \
            and _wire_ok(node.right, message_names)
    if isinstance(node, ast.Subscript):
        if not (isinstance(node.value, ast.Name)
                and node.value.id in ("tuple", "dict")):
            return False
        inner = node.slice
        elems = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        return all(_wire_ok(e, message_names) for e in elems)
    return False


def _decorator_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register
class WireMessageShape(Rule):
    id = "wire-message-shape"
    summary = ("every registered protocol message is a frozen dataclass "
               "with JSON-representable field annotations")
    contract = ("wire round-trip identity (test_protocol hypothesis "
                "suite): decode(encode(msg)) == msg requires frozen, "
                "hashable messages whose every field survives JSON")

    def applies_to(self, module: LintModule) -> bool:
        return module.path.as_posix().endswith(PROTOCOL_SUFFIX)

    def check(self, module: LintModule) -> Iterable[Violation]:
        registered = [
            node for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
            and any(_decorator_name(d) == "_register"
                    for d in node.decorator_list)
        ]
        names = {cls.name for cls in registered}
        for cls in registered:
            frozen = False
            for deco in cls.decorator_list:
                if _decorator_name(deco) != "dataclass":
                    continue
                if isinstance(deco, ast.Call):
                    frozen = any(
                        kw.arg == "frozen"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                        for kw in deco.keywords)
            if not frozen:
                yield module.violation(
                    self.id, cls,
                    f"message {cls.name} must be @dataclass(frozen=True): "
                    f"messages are wire values, never mutated in place")
            for stmt in cls.body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                ann = stmt.annotation
                if isinstance(ann, ast.Subscript) \
                        and isinstance(ann.value, ast.Name) \
                        and ann.value.id == "ClassVar":
                    continue
                if not _wire_ok(ann, names):
                    target = stmt.target
                    field = target.id if isinstance(target, ast.Name) \
                        else ast.dump(target)
                    yield module.violation(
                        self.id, stmt,
                        f"field {cls.name}.{field} has a non-wire "
                        f"annotation {ast.unparse(ann)!r}: use str/int/"
                        f"float/bool/None/dict/tuple[...], unions of "
                        f"those, or nested message classes (list is "
                        f"banned -- the decoder rebuilds sequences as "
                        f"tuples)")
