"""The rule set: importing this package registers every rule.

Each module encodes one family of project contracts; see the module
docstrings for the invariant each rule protects and the differential
suite that would catch (far too late, and flakily) what the rule
catches at lint time.
"""

from repro.lint.rules import clock, determinism, obs, rng, wire  # noqa: F401
