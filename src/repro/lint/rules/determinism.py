"""Determinism hazards in the execution/optimizer hot paths.

The engine's answers are pinned byte-for-byte across shard counts,
worker transports, and cache modes.  Python ``set`` iteration order is
salted per process (``PYTHONHASHSEED``), and ``id()`` is an allocation
address: ordering work by either produces answers that differ from run
to run -- exactly the class of bug the CI hash-seed matrix leg exists
to surface, one flake at a time.  This rule catches the mechanically
detectable forms at lint time instead, inside the order-sensitive
packages (``atc``, ``operators``, ``optimizer``, ``plan``):

* iterating directly over a set construction (``set(...)`` /
  ``frozenset(...)`` / set literals and comprehensions / ``.union()``
  -family calls) in a ``for`` or comprehension;
* materializing one in arbitrary order (``list(set(...))``,
  ``tuple(...)``, ``iter(...)``, ``enumerate(...)``, ``next(iter(s))``);
* ordering by object identity (``key=id`` or a ``key=lambda`` that
  calls ``id``) in ``sorted``/``min``/``max``/``.sort``.

Wrap the set in ``sorted(...)`` with a total key to fix any of them.
Named set-typed *variables* cannot be traced without type inference;
the rule documents what it can see, the differential suites catch the
rest.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.framework import LintModule, Rule, Violation, register

#: Path segments naming the order-sensitive packages.
HOT_SEGMENTS = frozenset({"atc", "operators", "optimizer", "plan"})

_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})
_MATERIALIZERS = frozenset({"list", "tuple", "iter", "enumerate"})


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return True
    return False


def _lambda_calls_id(node: ast.AST) -> bool:
    return isinstance(node, ast.Lambda) and any(
        isinstance(sub, ast.Call)
        and isinstance(sub.func, ast.Name) and sub.func.id == "id"
        for sub in ast.walk(node.body))


@register
class DeterministicOrder(Rule):
    id = "det-order"
    summary = ("no iteration/materialization of raw sets and no "
               "id()-keyed ordering in atc/operators/optimizer/plan")
    contract = ("byte-identical answers under the CI PYTHONHASHSEED "
                "matrix and across inproc/process workers: set order "
                "and id() are per-process accidents, so any answer-"
                "affecting order must come from sorted(...) on a "
                "total key")

    def applies_to(self, module: LintModule) -> bool:
        return bool(HOT_SEGMENTS.intersection(module.path.parts))

    def check(self, module: LintModule) -> Iterable[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) \
                    and _is_set_expr(node.iter):
                yield module.violation(
                    self.id, node.iter,
                    "iterating a set directly: the order is salted "
                    "per process -- iterate sorted(...) with a total key")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        yield module.violation(
                            self.id, gen.iter,
                            "comprehension over a raw set: the order is "
                            "salted per process -- iterate sorted(...) "
                            "with a total key")
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) \
                        and func.id in _MATERIALIZERS \
                        and len(node.args) == 1 \
                        and _is_set_expr(node.args[0]):
                    yield module.violation(
                        self.id, node,
                        f"{func.id}() over a raw set materializes an "
                        f"arbitrary per-process order -- use sorted(...) "
                        f"with a total key")
                    continue
                is_sort_call = (
                    isinstance(func, ast.Name)
                    and func.id in ("sorted", "min", "max")
                ) or (isinstance(func, ast.Attribute) and func.attr == "sort")
                if is_sort_call:
                    for kw in node.keywords:
                        if kw.arg != "key":
                            continue
                        key_is_id = (isinstance(kw.value, ast.Name)
                                     and kw.value.id == "id")
                        if key_is_id or _lambda_calls_id(kw.value):
                            yield module.violation(
                                self.id, kw.value,
                                "ordering by id(): object identity is an "
                                "allocation address, different every run "
                                "-- order by a stable domain key")
