"""repro-lint: mechanical enforcement of the reproduction's contracts.

The rules (see ``repro lint --list-rules`` or
:mod:`repro.lint.rules`):

* ``clock-discipline`` -- time flows through the ``Clock`` protocol;
* ``rng-discipline`` -- randomness flows through ``common/rng.py``;
* ``wire-no-pickle`` / ``wire-message-shape`` -- the shard-worker wire
  stays versioned, pickle-free JSON over frozen dataclasses;
* ``det-order`` -- no salted set order / ``id()`` ordering in the
  answer-affecting hot paths;
* ``obs-guard`` / ``obs-counter-drift`` -- tracing stays free when
  off and telemetry counters stay registry-listed.

Suppressions are explicit and *reasoned*::

    do_thing()  # repro: allow[rule-id] -- why this site is exempt

A reasonless or stale allow is itself a violation, so the suppression
ledger stays an honest record of every exception to the contracts.
"""

from repro.lint.framework import (
    LintError,
    LintModule,
    LintReport,
    Rule,
    Suppression,
    Violation,
    all_rules,
    format_suppression,
    get_rules,
    parse_suppression,
    register,
    run_lint,
)
from repro.lint.report import render_console, render_json, render_rule_list

__all__ = [
    "LintError",
    "LintModule",
    "LintReport",
    "Rule",
    "Suppression",
    "Violation",
    "all_rules",
    "format_suppression",
    "get_rules",
    "parse_suppression",
    "register",
    "render_console",
    "render_json",
    "render_rule_list",
    "run_lint",
]
