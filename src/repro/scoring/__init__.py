"""Score functions: monotone models with upper-bound support."""

from repro.scoring.base import MonotoneScore, intrinsic_order_is_score_order
from repro.scoring.models import (
    SCORING_MODELS,
    banks_score,
    contribution_caps,
    discover_score,
    qsystem_score,
    tree_edges,
    user_coefficients,
)

__all__ = [
    "MonotoneScore",
    "SCORING_MODELS",
    "banks_score",
    "contribution_caps",
    "discover_score",
    "intrinsic_order_is_score_order",
    "qsystem_score",
    "tree_edges",
    "user_coefficients",
]
