"""Monotone score functions and their upper bounds.

Section 2 of the paper assumes each conjunctive query ``CQ_i`` is paired
with a *monotonic* score function ``C_i`` mapping result tuples to real
scores, together with a function ``U(C_i)`` giving an upper bound on the
score of any tuple the query can still return.  All three models the
paper surveys (DISCOVER, the Q System, BANKS/BLINKS) fit the shape

    ``C(t) = transform( static + sum_a  w_a * contrib_a(t) )``

where ``contrib_a`` is atom ``a``'s intrinsic score contribution (the
sum of its score-attribute values), every weight ``w_a`` is
non-negative, and ``transform`` is a nondecreasing function (identity,
or ``x -> 2**x`` for the Q System's ``1/2^cost`` form).  That is what
:class:`MonotoneScore` implements.

Because the shape is additive, a score function also supports the
*partial* bounds that drive the whole execution model: given the exact
contributions of the atoms bound so far and an upper bound on each
unbound atom's contribution, :meth:`MonotoneScore.bound` returns a tight
upper bound on the score of any extension -- this is the quantity
m-joins gate their output queues on and rank-merge operators use as
per-stream thresholds.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Mapping

from repro.common.errors import ScoringError
from repro.data.rows import STuple

#: Registry of allowed monotone transforms.
_TRANSFORMS: dict[str, Callable[[float], float]] = {
    "identity": lambda x: x,
    "exp2": lambda x: math.pow(2.0, x) if x < 64 else math.inf,
}


class MonotoneScore:
    """A monotone score function over an SPJ expression's atoms.

    Parameters
    ----------
    weights:
        Non-negative weight per alias.  Aliases with weight zero do not
        influence the score (typical for link tables in the DISCOVER
        model).
    static:
        The static component: derived from the query's size, its edge
        costs, and the relations' authoritativeness (Section 2.1).
    transform:
        ``"identity"`` or ``"exp2"`` (the Q System's ``2**x`` applied to
        a negative cost, yielding ``1/2^cost``).
    caps:
        Upper bound on each alias's contribution; usually the maximum
        score-attribute total observed in the relation's statistics.
        Required for every alias in ``weights``.
    """

    __slots__ = ("weights", "static", "transform_name", "caps", "_transform")

    def __init__(self, weights: Mapping[str, float], static: float,
                 transform: str, caps: Mapping[str, float]) -> None:
        if transform not in _TRANSFORMS:
            raise ScoringError(
                f"unknown transform {transform!r}; "
                f"expected one of {sorted(_TRANSFORMS)}"
            )
        for alias, weight in weights.items():
            if weight < 0:
                raise ScoringError(
                    f"weight for alias {alias!r} is negative ({weight}); "
                    "monotonicity requires non-negative weights"
                )
        missing = set(weights) - set(caps)
        if missing:
            raise ScoringError(
                f"caps missing for aliases {sorted(missing)}"
            )
        self.weights: dict[str, float] = dict(weights)
        self.static = float(static)
        self.transform_name = transform
        self.caps: dict[str, float] = {a: float(caps[a]) for a in weights}
        self._transform = _TRANSFORMS[transform]

    # -- full scores -------------------------------------------------------

    @property
    def aliases(self) -> frozenset[str]:
        return frozenset(self.weights)

    def raw(self, contribs: Mapping[str, float]) -> float:
        """The pre-transform linear combination for full bindings."""
        missing = self.aliases - set(contribs)
        if missing:
            raise ScoringError(
                f"contributions missing for aliases {sorted(missing)}"
            )
        return self.static + sum(
            self.weights[a] * contribs[a] for a in self.weights
        )

    def score(self, tup: STuple) -> float:
        """The final score of a fully bound result tuple."""
        return self._transform(self.raw(tup.contribs))

    # -- bounds ------------------------------------------------------------------

    def bound(self, known: Mapping[str, float],
              unbound_caps: Mapping[str, float] | None = None) -> float:
        """Upper bound over all extensions of a partial binding.

        ``known`` maps bound aliases to their exact contributions;
        every other alias contributes its cap (overridable per-call via
        ``unbound_caps``, which the rank-merge uses to push a stream's
        *current* high-water mark instead of the static maximum).
        """
        total = self.static
        for alias, weight in self.weights.items():
            if alias in known:
                value = known[alias]
            elif unbound_caps is not None and alias in unbound_caps:
                value = unbound_caps[alias]
            else:
                value = self.caps[alias]
            if value == -math.inf:
                return -math.inf
            total += weight * value
        return self._transform(total)

    def max_score(self) -> float:
        """``U(C)``: the largest score any result of this query can have."""
        return self.bound({})

    def bound_from_intrinsic(self, intrinsic_bound: float) -> float:
        """Upper bound on the score of any tuple whose *intrinsic* total
        (sum of contributions) is at most ``intrinsic_bound``.

        The plan graph's streams are ordered and bounded by intrinsic
        score; this converts a stream's intrinsic bound into a bound
        under this (possibly non-uniformly weighted) score function:
        ``sum w_a c_a <= min(w_max * sum c_a, sum w_a cap_a)``.  For the
        uniform-weight models the bound is exact.
        """
        if intrinsic_bound == -math.inf:
            return -math.inf
        cap_total = sum(self.weights[a] * self.caps[a] for a in self.weights)
        w_max = max(self.weights.values(), default=0.0)
        return self._transform(
            self.static + min(w_max * intrinsic_bound, cap_total)
        )

    # -- derived functions --------------------------------------------------------

    def restricted(self, aliases: frozenset[str] | set[str]) -> "MonotoneScore":
        """The score function induced on a subexpression's aliases.

        Keeps those aliases' weights and caps, drops the static term and
        the transform (subexpression ordering only needs the *linear*
        part; the identity transform preserves order and composition).
        """
        unknown = set(aliases) - set(self.weights)
        if unknown:
            raise ScoringError(
                f"cannot restrict to unknown aliases {sorted(unknown)}"
            )
        kept = {a: self.weights[a] for a in aliases}
        caps = {a: self.caps[a] for a in aliases}
        return MonotoneScore(kept, 0.0, "identity", caps)

    def renamed(self, mapping: Mapping[str, str]) -> "MonotoneScore":
        """The same function with aliases renamed through ``mapping``."""
        weights = {mapping.get(a, a): w for a, w in self.weights.items()}
        caps = {mapping.get(a, a): c for a, c in self.caps.items()}
        if len(weights) != len(self.weights):
            raise ScoringError(f"renaming {dict(mapping)} collapses aliases")
        return MonotoneScore(weights, self.static, self.transform_name, caps)

    def __repr__(self) -> str:
        terms = " + ".join(
            f"{w:.3g}*{a}" for a, w in sorted(self.weights.items())
        )
        return (f"MonotoneScore({self.transform_name}"
                f"({self.static:.3g} + {terms}))")


def intrinsic_order_is_score_order(score: MonotoneScore) -> bool:
    """Whether sorting by intrinsic contribution sorts by final score.

    True when all weights are equal -- the common case, and the property
    ("even subqueries that use different scoring functions will read
    from the source relations in the same order", Section 1) that lets
    one shared stream serve users with different score functions.
    """
    values = set(score.weights.values())
    return len(values) <= 1
