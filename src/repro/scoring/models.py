"""The three scoring models of Section 2.1, as MonotoneScore factories.

Each factory takes a conjunctive query's expression plus the schema (for
edge/node costs) and per-relation statistics (for contribution caps) and
returns the :class:`~repro.scoring.base.MonotoneScore` the paper's text
describes:

* **DISCOVER** [12, 13]: ``C(t) = 1/size(CQ)`` or
  ``C(t) = sum_i score(t_i) / size(CQ)`` -- candidate networks ranked by
  size, optionally refined with the per-tuple IR scores.

* **Q System** [32, 33]: ``C(t) = 1/2^c`` with
  ``c = sum_e c_e + sum_i cost(t_i)``: edge costs from the schema graph
  (possibly re-weighted per user) plus per-tuple costs.  We map a
  tuple's cost to ``cap - contribution`` so that higher-scoring source
  tuples mean lower cost, preserving the paper's semantics while
  keeping the function monotone *increasing* in the contributions.

* **BANKS/BLINKS** [2, 11]: a monotone combination of node prestige and
  edge weights; we implement the standard affine form
  ``lambda_e * edgescore + (1 - lambda_e) * sum node_weight_i *
  contrib_i``.

User-specific coefficients: the Q System "supports custom ranking
functions for each user" and the synthetic workload draws score-function
coefficients from a Zipfian distribution; :func:`user_coefficients`
reproduces that draw.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.common.rng import ZipfSampler, make_rng
from repro.data.database import Federation
from repro.data.schema import Schema, SchemaEdge
from repro.plan.expressions import SPJ
from repro.scoring.base import MonotoneScore


def contribution_caps(expr: SPJ, federation: Federation
                      ) -> dict[str, float]:
    """Per-alias upper bounds on score contributions, from site stats."""
    caps: dict[str, float] = {}
    for atom in expr.atoms:
        stats = federation.stats(atom.relation)
        caps[atom.alias] = stats.max_contribution
    return caps


def tree_edges(expr: SPJ, schema: Schema) -> list[SchemaEdge]:
    """The schema edges a CQ's join predicates traverse.

    Each join predicate is matched to the (unique, cheapest) schema edge
    between its two relations that uses the same attribute pair.
    """
    edges: list[SchemaEdge] = []
    for pred in expr.joins:
        left_rel = expr.alias_to_relation[pred.left_alias]
        right_rel = expr.alias_to_relation[pred.right_alias]
        best: SchemaEdge | None = None
        for edge in schema.edges_between(left_rel, right_rel):
            attrs = {
                (edge.left_relation, edge.left_attr),
                (edge.right_relation, edge.right_attr),
            }
            wanted = {
                (left_rel, pred.left_attr),
                (right_rel, pred.right_attr),
            }
            if attrs == wanted and (best is None or edge.cost < best.cost):
                best = edge
        if best is not None:
            edges.append(best)
    return edges


def discover_score(expr: SPJ, federation: Federation,
                   use_ir_scores: bool = True) -> MonotoneScore:
    """The DISCOVER model: size-normalized, optionally IR-weighted."""
    size = expr.size
    caps = contribution_caps(expr, federation)
    if use_ir_scores:
        weights = {alias: 1.0 / size for alias in expr.aliases}
        return MonotoneScore(weights, 0.0, "identity", caps)
    weights = {alias: 0.0 for alias in expr.aliases}
    return MonotoneScore(weights, 1.0 / size, "identity", caps)


def qsystem_score(expr: SPJ, federation: Federation,
                  edge_multipliers: Mapping[str, float] | None = None,
                  ) -> MonotoneScore:
    """The Q System model: ``C(t) = 2**-(static_cost + tuple costs)``.

    ``edge_multipliers`` optionally re-weights each relation's learned
    authority per user (keyed by relation name); this is how different
    users get different scoring functions over the same queries.
    """
    schema = federation.schema
    caps = contribution_caps(expr, federation)
    multipliers = edge_multipliers or {}
    static_cost = 0.0
    for edge in tree_edges(expr, schema):
        static_cost += edge.cost
    for atom in expr.atoms:
        relation = schema.relation(atom.relation)
        static_cost += relation.node_cost * multipliers.get(atom.relation, 1.0)
    # cost(t_i) = cap_i - contrib_i  =>  c = static_cost + sum(cap - contrib)
    # C  = 2^-c = 2^( -(static_cost + sum caps) + sum contribs )
    total_caps = sum(caps.values())
    weights = {alias: 1.0 for alias in expr.aliases}
    static = -(static_cost + total_caps)
    return MonotoneScore(weights, static, "exp2", caps)


def banks_score(expr: SPJ, federation: Federation,
                node_weights: Mapping[str, float] | None = None,
                edge_lambda: float = 0.3) -> MonotoneScore:
    """A BANKS-style monotone combination of edge and node scores."""
    schema = federation.schema
    caps = contribution_caps(expr, federation)
    edges = tree_edges(expr, schema)
    max_cost = max((e.cost for e in schema.edges), default=1.0) or 1.0
    # Edge score: better (lower-cost) edges score higher, normalized to
    # [0, 1] per edge then averaged over the tree.
    if edges:
        edge_score = sum(1.0 - e.cost / (max_cost + 1e-9) for e in edges)
        edge_score /= len(edges)
    else:
        edge_score = 1.0
    provided = node_weights or {}
    weights = {}
    for atom in expr.atoms:
        weights[atom.alias] = (
            (1.0 - edge_lambda) * provided.get(atom.relation, 1.0)
            / max(1, expr.size)
        )
    return MonotoneScore(weights, edge_lambda * edge_score, "identity", caps)


def user_coefficients(relations: Sequence[str], seed: int, user: str,
                      levels: int = 8) -> dict[str, float]:
    """Zipf-drawn per-relation multipliers for one user's score function.

    Reproduces the synthetic workload's "coefficients on the score
    functions for the various user queries were drawn from a Zipfian
    distribution": each relation gets a multiplier in (0, 1] whose rank
    is Zipf-distributed, so most relations keep weight ~1 and a few are
    discounted.
    """
    rng = make_rng(seed, "user-coeff", user)
    sampler = ZipfSampler(levels, theta=1.0, rng=rng)
    out = {}
    for relation in relations:
        rank = sampler.sample()
        out[relation] = round(1.0 - rank / (2.0 * levels), 6)
    return out


#: Factory registry used by the workload builders.
SCORING_MODELS = {
    "discover": discover_score,
    "qsystem": qsystem_score,
    "banks": banks_score,
}
