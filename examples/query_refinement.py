"""Query refinement with state reuse: the paper's Examples 1, 3 and 6.

A biologist poses KQ1 = "protein 'plasma membrane' gene", inspects the
answers, and then refines to KQ3 = "'plasma membrane' gene" -- whose
conjunctive queries (CQ5, CQ6 in the paper's Table 3) are
subexpressions of KQ1's CQ1.  Under ATC-FULL the QS manager grafts the
new queries onto the retained plan graph: the already-streamed
prefixes of sigma(T), G2G, GI... are replayed from the m-join hash
tables' linked lists (Algorithm 2) instead of being re-fetched over the
wide area, so the refined query is dramatically cheaper.

The same scenario is then repeated with a fresh engine (no retained
state) to show the difference.

Run:  python examples/query_refinement.py
"""

from repro import (
    ExecutionConfig,
    KeywordQuery,
    QSystemEngine,
    SharingMode,
    figure1_federation,
)


def run_scenario(reuse: bool) -> dict:
    federation = figure1_federation(seed=7)
    config = ExecutionConfig(mode=SharingMode.ATC_FULL, k=10, seed=1)

    if reuse:
        engine = QSystemEngine(federation, config)
        engine.submit(KeywordQuery(
            "KQ1", ("protein", "plasma membrane", "gene"), k=10,
            arrival=0.0))
        engine.submit(KeywordQuery(
            "KQ3", ("plasma membrane", "gene"), k=10, arrival=60.0))
        report = engine.run()
        return {
            "KQ1": report.metrics.uq_records["KQ1"],
            "KQ3": report.metrics.uq_records["KQ3"],
            "reused": report.metrics.tuples_reused,
            "recoveries": report.metrics.recovery_queries,
            "answers": report.answers["KQ3"][:5],
        }

    # No-reuse variant: each query gets its own engine (cold state).
    engine1 = QSystemEngine(federation, config)
    engine1.submit(KeywordQuery(
        "KQ1", ("protein", "plasma membrane", "gene"), k=10, arrival=0.0))
    report1 = engine1.run()
    engine2 = QSystemEngine(federation, config)
    engine2.submit(KeywordQuery(
        "KQ3", ("plasma membrane", "gene"), k=10, arrival=0.0))
    report2 = engine2.run()
    return {
        "KQ1": report1.metrics.uq_records["KQ1"],
        "KQ3": report2.metrics.uq_records["KQ3"],
        "reused": report2.metrics.tuples_reused,
        "recoveries": report2.metrics.recovery_queries,
        "answers": report2.answers["KQ3"][:5],
    }


def main() -> None:
    print("=== With state reuse (ATC-FULL, one retained plan graph) ===")
    warm = run_scenario(reuse=True)
    print(f"KQ1 execution time: {warm['KQ1'].execution_time:8.3f} virtual s "
          f"({warm['KQ1'].cqs_executed} CQs executed)")
    print(f"KQ3 execution time: {warm['KQ3'].execution_time:8.3f} virtual s "
          f"({warm['KQ3'].cqs_executed} CQs executed)")
    print(f"tuples replayed from retained state: {warm['reused']}, "
          f"recovery streams registered: {warm['recoveries']}")

    print("\n=== Without reuse (fresh engine per query) ===")
    cold = run_scenario(reuse=False)
    print(f"KQ1 execution time: {cold['KQ1'].execution_time:8.3f} virtual s")
    print(f"KQ3 execution time: {cold['KQ3'].execution_time:8.3f} virtual s")

    speedup = (cold["KQ3"].execution_time
               / max(warm["KQ3"].execution_time, 1e-9))
    print(f"\nRefined query speedup from reuse: {speedup:.1f}x")

    print("\nTop answers for the refined query (identical either way):")
    for warm_answer, cold_answer in zip(warm["answers"], cold["answers"]):
        assert abs(warm_answer.score - cold_answer.score) < 1e-9, \
            "reuse must not change answers"
        print(f"  score={warm_answer.score:.4f} via {warm_answer.cq_id}")


if __name__ == "__main__":
    main()
