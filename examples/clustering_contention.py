"""Over-sharing vs clustering: the paper's Section 6.1 trade-off.

One big shared plan graph (ATC-FULL) minimizes *total work* -- every
stream is read once for everybody -- but forces unrelated queries to
take turns on the same ATC: a query that depends on a small corner of
the graph waits while the round-robin serves everyone else.  Clustering
(ATC-CL) groups queries with overlapping footprints onto separate plan
graphs: slightly more total work, much less waiting.

This example builds two *disjoint* families of user queries (they
share almost nothing with each other, everything within the family),
runs both configurations, and prints per-query execution times, total
tuples consumed, and the cluster assignment the incremental Jaccard
clusterer chose.

Run:  python examples/clustering_contention.py
"""

from repro import ExecutionConfig, KeywordQuery, QSystemEngine, SharingMode
from repro.data.gus import GUSConfig, gus_federation
from repro.data.inverted import InvertedIndex

#: Two families of queries with disjoint keyword footprints.
SESSION = [
    ("f1-a", ("protein", "membrane"), 0.0),
    ("f2-a", ("mutation", "disease"), 0.5),
    ("f1-b", ("protein", "kinase"), 1.0),
    ("f2-b", ("disease", "pathway"), 1.5),
    ("f1-c", ("membrane", "kinase"), 2.0),
    ("f2-c", ("mutation", "pathway"), 2.5),
]


def run_mode(federation, index, mode):
    config = ExecutionConfig(mode=mode, k=15, batch_size=6, seed=11,
                             cluster_jaccard=0.6)
    engine = QSystemEngine(federation, config, index=index)
    for name, keywords, arrival in SESSION:
        engine.submit(KeywordQuery(name, keywords, k=15, arrival=arrival))
    return engine.run()


def main() -> None:
    federation = gus_federation(GUSConfig(
        n_hubs=10, satellites_per_hub=1, min_rows=120, max_rows=320,
        domain_factor=0.45, seed=13,
    ))
    index = InvertedIndex(federation)

    full = run_mode(federation, index, SharingMode.ATC_FULL)
    clustered = run_mode(federation, index, SharingMode.ATC_CL)

    print(f"{'query':8s} {'ATC-FULL (s)':>13s} {'ATC-CL (s)':>11s}")
    full_times = full.execution_times()
    cl_times = clustered.execution_times()
    for name, _keywords, _arrival in SESSION:
        print(f"{name:8s} {full_times[name]:13.3f} {cl_times[name]:11.3f}")

    print(f"\nplan graphs: ATC-FULL={len(full.graph_summaries)}, "
          f"ATC-CL={len(clustered.graph_summaries)}")
    print("ATC-CL cluster assignment:")
    for graph_id, summary in sorted(clustered.graph_summaries.items()):
        print(f"  {graph_id}: {summary['units']} inputs, "
              f"{summary['nodes']} m-joins, epoch {summary['epoch']}")

    full_work = full.metrics.total_input_tuples
    cl_work = clustered.metrics.total_input_tuples
    print(f"\ntotal input tuples: ATC-FULL={full_work}, "
          f"ATC-CL={cl_work} "
          f"(clustering trades at most a little extra work for "
          f"parallel graphs)")
    mean_full = sum(full_times.values()) / len(full_times)
    mean_cl = sum(cl_times.values()) / len(cl_times)
    print(f"mean execution time: ATC-FULL={mean_full:.3f}s, "
          f"ATC-CL={mean_cl:.3f}s")


if __name__ == "__main__":
    main()
