"""A multi-user bioinformatics portal over the GUS-like federation.

Simulates the paper's motivating scenario (Section 1): a portal where
scientists continuously pose ad hoc keyword queries over a large
federated schema.  Several users submit overlapping two-keyword
queries within seconds of each other; the engine batches them,
performs multiple query optimization across the batch, and executes
everything on shared plan graphs.

The script runs the same session under the no-sharing baseline
(ATC-CQ) and the clustered configuration (ATC-CL) and reports the
per-user latencies and total work side by side -- a miniature of the
paper's Figure 7 / Figure 10 story.

Run:  python examples/bio_portal.py
"""

from repro import ExecutionConfig, KeywordQuery, QSystemEngine, SharingMode
from repro.data.gus import GUSConfig, gus_federation
from repro.data.inverted import InvertedIndex

SESSION = [
    # (user, keywords, arrival seconds)
    ("alice", ("protein", "membrane"), 0.0),
    ("bob", ("protein", "kinase"), 1.5),
    ("carol", ("gene", "membrane"), 3.0),
    ("dave", ("protein", "gene"), 4.0),
    ("erin", ("kinase", "receptor"), 5.5),
    ("alice", ("protein", "receptor"), 9.0),
]


def run_mode(federation, index, mode: SharingMode):
    config = ExecutionConfig(mode=mode, k=15, batch_size=5, seed=11)
    engine = QSystemEngine(federation, config, index=index)
    for i, (user, keywords, arrival) in enumerate(SESSION):
        engine.submit(KeywordQuery(
            kq_id=f"q{i}-{user}", keywords=keywords, k=15,
            user=user, arrival=arrival,
        ))
    return engine.run()


def main() -> None:
    print("Building a GUS-like federation "
          "(small scale: ~35 relations, 6 sites)...")
    federation = gus_federation(GUSConfig(
        n_hubs=8, satellites_per_hub=1, min_rows=100, max_rows=300,
        domain_factor=0.45, seed=11,
    ))
    index = InvertedIndex(federation)
    print(f"  {len(federation.schema.relations)} relations across "
          f"{len(federation.sites)} sites\n")

    reports = {
        mode: run_mode(federation, index, mode)
        for mode in (SharingMode.ATC_CQ, SharingMode.ATC_CL)
    }

    print(f"{'query':16s} {'user':8s} "
          f"{'ATC-CQ (s)':>12s} {'ATC-CL (s)':>12s} {'speedup':>9s}")
    for i, (user, keywords, _arrival) in enumerate(SESSION):
        uq_id = f"q{i}-{user}"
        cq_latency = reports[SharingMode.ATC_CQ].processing_times()[uq_id]
        cl_latency = reports[SharingMode.ATC_CL].processing_times()[uq_id]
        speedup = cq_latency / max(cl_latency, 1e-9)
        print(f"{uq_id:16s} {user:8s} {cq_latency:12.3f} "
              f"{cl_latency:12.3f} {speedup:8.1f}x")

    for mode, report in reports.items():
        metrics = report.metrics
        print(f"\n{mode}: {metrics.stream_tuples_read} stream reads, "
              f"{metrics.probes_performed} probes "
              f"({metrics.probe_cache_hits} cache hits), "
              f"{len(report.graph_summaries)} plan graph(s)")
        breakdown = metrics.breakdown()
        print(f"  time breakdown: stream {breakdown['stream']:.0%}, "
              f"random access {breakdown['random_access']:.0%}, "
              f"join {breakdown['join']:.0%}")


if __name__ == "__main__":
    main()
