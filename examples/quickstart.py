"""Quickstart: keyword search over the paper's Figure 1 federation.

Builds the ten-relation bioinformatics federation from the paper's
running example (UniProt, ProSite, InterPro, GeneOntology, NCBI) and
serves the paper's first keyword query KQ1 = "protein 'plasma
membrane' gene" through the v2 client API: ``submit`` returns a
:class:`~repro.QueryHandle`, and the top-10 ranked answers are
consumed *progressively* from ``handle.results()`` as the rank-merge
operator emits them.  A second query is then cancelled mid-flight, and
a third runs under a deadline -- the three verbs (stream, cancel,
expire) every real search front end needs.

Run:  python examples/quickstart.py
"""

from repro import (
    ExecutionConfig,
    KeywordQuery,
    QService,
    SharingMode,
    figure1_federation,
)


def main() -> None:
    print("Building the Figure 1 federation (5 simulated sites)...")
    federation = figure1_federation(seed=7)
    for site in federation.sites:
        names = federation.database(site).relation_names
        print(f"  site {site:14s} hosts {', '.join(names)}")

    config = ExecutionConfig(mode=SharingMode.ATC_FULL, k=10, seed=1)
    service = QService(federation, config)

    kq = KeywordQuery("KQ1", ("protein", "plasma membrane", "gene"), k=10)
    handle = service.submit(kq)
    print(f"\nKeyword query {kq.kq_id}: {' '.join(kq.keywords)}")
    print(f"Submitted -> {handle!r}")

    print(f"\nStreaming the top-{config.k} as the rank-merge emits them:")
    for rank, answer in enumerate(handle.results(), start=1):
        rows = ", ".join(
            f"{rel}#{tid}" for _alias, rel, tid in sorted(answer.provenance)
        )
        print(f"  {rank:2d}. score={answer.score:.4f}  via {answer.cq_id}  "
              f"[{rows}]")
    print(f"Handle is now {handle.status} "
          f"(latency {handle.latency:.2f} virtual s)")

    print("\nA user reads three answers and navigates away: cancel "
          "keeps them\nand frees the query's plan share...")
    abandoned = service.submit(KeywordQuery(
        "KQ2", ("kinase", "pathway"), k=10,
        arrival=service.engine.virtual_now() + 1.0))
    for i, _answer in enumerate(abandoned.results(), start=1):
        if i == 3:
            abandoned.cancel()
    print(f"  {abandoned!r} kept {len(abandoned.answers)} answers-so-far")

    print("A deadline bounds a query's lifetime (here: expires before "
          "it can run):")
    at = service.engine.virtual_now() + 2.0
    bounded = service.submit(
        KeywordQuery("KQ3", ("receptor", "binding"), k=10, arrival=at),
        deadline=at + 1e-4)
    report = service.drain()
    print(f"  {bounded!r} after {bounded.completed_at - bounded.arrival:.4f}"
          f" virtual s")

    metrics = report.engine_report.metrics
    record = metrics.uq_records[handle.uq_id]
    print(f"\nKQ1 executed {record.cqs_executed} of {record.cqs_total} CQs "
          f"(lazy activation); time to first answer "
          f"{record.ttfa:.2f}s vs completion {record.latency:.2f}s")
    print(f"Work: {metrics.stream_tuples_read} stream reads, "
          f"{metrics.probes_performed} remote probes, "
          f"{metrics.join_probes} in-memory join probes")
    print()
    print(report.render())


if __name__ == "__main__":
    main()
