"""Quickstart: keyword search over the paper's Figure 1 federation.

Builds the ten-relation bioinformatics federation from the paper's
running example (UniProt, ProSite, InterPro, GeneOntology, NCBI),
submits the paper's first keyword query KQ1 = "protein 'plasma
membrane' gene", and prints the top-10 ranked answers together with the
conjunctive queries (candidate networks) that produced them.

Run:  python examples/quickstart.py
"""

from repro import (
    ExecutionConfig,
    KeywordQuery,
    QSystemEngine,
    SharingMode,
    figure1_federation,
)


def main() -> None:
    print("Building the Figure 1 federation (5 simulated sites)...")
    federation = figure1_federation(seed=7)
    for site in federation.sites:
        names = federation.database(site).relation_names
        print(f"  site {site:14s} hosts {', '.join(names)}")

    config = ExecutionConfig(mode=SharingMode.ATC_FULL, k=10, seed=1)
    engine = QSystemEngine(federation, config)

    kq = KeywordQuery("KQ1", ("protein", "plasma membrane", "gene"), k=10)
    uq = engine.submit(kq)
    print(f"\nKeyword query {kq.kq_id}: {' '.join(kq.keywords)}")
    print(f"Expanded into {len(uq.cqs)} conjunctive queries "
          f"(candidate networks); the best few:")
    for cq in uq.cqs[:5]:
        print(f"  {cq.cq_id:12s} {cq.expr.describe():55s} "
              f"U(C)={cq.upper_bound:.4f}")

    print("\nExecuting (pipelined m-joins + rank-merge under the ATC)...")
    report = engine.run()

    print(f"\nTop-{config.k} answers:")
    for rank, answer in enumerate(report.answers["KQ1"], start=1):
        rows = ", ".join(
            f"{rel}#{tid}" for _alias, rel, tid in sorted(answer.provenance)
        )
        print(f"  {rank:2d}. score={answer.score:.4f}  via {answer.cq_id}  "
              f"[{rows}]")

    record = report.metrics.uq_records["KQ1"]
    print(f"\nExecuted {record.cqs_executed} of {record.cqs_total} CQs "
          f"(lazy activation) in {record.latency:.2f} virtual seconds")
    print(f"Work: {report.metrics.stream_tuples_read} stream reads, "
          f"{report.metrics.probes_performed} remote probes, "
          f"{report.metrics.join_probes} in-memory join probes")


if __name__ == "__main__":
    main()
